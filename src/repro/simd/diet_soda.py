"""Diet SODA processing-element model (Appendix B of the paper).

Diet SODA [Seo et al., ISLPED 2010] is the 128-wide SIMD signal processor
the paper's architecture study targets.  One processing element (PE)
contains, per the paper's Figure 10:

1. a 64 KB multi-banked SIMD memory (4 banks, full voltage),
2. a 4 KB scalar memory (full voltage),
3. a SIMD data prefetcher with 128-wide buffer (full voltage),
4. the 128-wide 16-bit SIMD pipeline — register file, 128 functional
   units, the 128x128 XRAM shuffle network (SSN) and a multi-output adder
   tree (dual-voltage domain: runs at near-threshold for low power),
5. two scalar pipelines (one per voltage domain), and
6. four AGU pipelines feeding the memory banks (full voltage).

The paper uses the PE's area/power breakdown to translate mitigation
parameters (spare count, voltage margin) into chip-level overheads.  The
published tables imply three constants (DESIGN.md Section 4.4):

* spare area: 0.4516 % of PE area per spare FU slice (so the 128-FU array
  is 57.8 % of the PE),
* shuffle-network power: 13.7 % of PE power, scaling ~ (width/128)^1.5,
* DV-domain power: 43 % of PE power (what a supply margin multiplies).

The full per-module breakdown below is a *reconstruction* consistent with
those constants; only the three constants affect reproduced numbers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.devices.paper_anchors import (
    AREA_PER_SPARE_PCT,
    DV_DOMAIN_POWER_FRACTION,
    SHUFFLE_POWER_FRACTION_PCT,
    SHUFFLE_WIDTH_EXPONENT,
)
from repro.errors import ConfigurationError

__all__ = ["VoltageDomain", "Module", "DietSodaPE", "DIET_SODA"]


class VoltageDomain(enum.Enum):
    """Operating voltage domain of a PE module.

    ``FULL`` modules always run at nominal voltage (memories and their
    address logic, for data-retention reasons); ``DUAL`` modules can run at
    either nominal or near-threshold voltage (the SIMD datapath).
    """

    FULL = "full-voltage"
    DUAL = "dual-voltage"


@dataclass(frozen=True)
class Module:
    """One architectural module of the PE.

    ``area_fraction`` / ``power_fraction`` are fractions of the whole PE
    (they sum to 1.0 across the PE).  ``scales_with_width`` marks modules
    whose size tracks the SIMD width (relevant when spares are added).
    """

    name: str
    domain: VoltageDomain
    area_fraction: float
    power_fraction: float
    scales_with_width: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.area_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: bad area fraction")
        if not 0.0 <= self.power_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: bad power fraction")


def _default_modules() -> tuple:
    """Reconstructed Diet SODA PE breakdown (see module docstring)."""
    fv, dv = VoltageDomain.FULL, VoltageDomain.DUAL
    return (
        # -- full-voltage domain (57 % of power) ---------------------------
        Module("simd-memory-banks", fv, area_fraction=0.200, power_fraction=0.230),
        Module("scalar-memory", fv, area_fraction=0.020, power_fraction=0.030),
        Module("data-prefetcher", fv, area_fraction=0.020, power_fraction=0.050),
        Module("agu-pipelines", fv, area_fraction=0.040, power_fraction=0.080),
        Module("scalar-pipeline-fv", fv, area_fraction=0.012, power_fraction=0.043),
        Module("xram-shuffle-network", fv, area_fraction=0.060,
               power_fraction=SHUFFLE_POWER_FRACTION_PCT / 100.0,
               scales_with_width=True),
        # -- dual-voltage domain (43 % of power) ---------------------------
        Module("simd-functional-units", dv, area_fraction=0.578,
               power_fraction=0.250, scales_with_width=True),
        Module("simd-register-file", dv, area_fraction=0.050,
               power_fraction=0.100, scales_with_width=True),
        Module("multi-output-adder-tree", dv, area_fraction=0.010,
               power_fraction=0.030),
        Module("scalar-pipeline-dv", dv, area_fraction=0.010,
               power_fraction=0.050),
    )


@dataclass(frozen=True)
class DietSodaPE:
    """A Diet SODA processing element with overhead accounting.

    Parameters
    ----------
    simd_width:
        Baseline SIMD width (128 in the paper).
    modules:
        Per-module breakdown; defaults to the reconstructed Diet SODA PE.
    """

    simd_width: int = 128
    modules: tuple = field(default_factory=_default_modules)

    def __post_init__(self) -> None:
        if self.simd_width < 1:
            raise ConfigurationError("simd_width must be >= 1")
        area = sum(m.area_fraction for m in self.modules)
        power = sum(m.power_fraction for m in self.modules)
        if not math.isclose(area, 1.0, abs_tol=1e-6):
            raise ConfigurationError(f"module area fractions sum to {area}, not 1")
        if not math.isclose(power, 1.0, abs_tol=1e-6):
            raise ConfigurationError(f"module power fractions sum to {power}, not 1")

    # -- breakdown views ----------------------------------------------------

    def module(self, name: str) -> Module:
        """Look up a module by name."""
        for m in self.modules:
            if m.name == name:
                return m
        raise ConfigurationError(f"no module named {name!r}")

    def domain_power_fraction(self, domain: VoltageDomain) -> float:
        """Total power fraction of one voltage domain."""
        return sum(m.power_fraction for m in self.modules if m.domain is domain)

    @property
    def dv_power_fraction(self) -> float:
        """Power fraction of the dual-voltage (near-threshold) domain."""
        return self.domain_power_fraction(VoltageDomain.DUAL)

    @property
    def fu_area_fraction(self) -> float:
        """Area fraction of the 128-FU array (paper: 57.8 %)."""
        return self.module("simd-functional-units").area_fraction

    @property
    def area_per_spare(self) -> float:
        """PE area fraction added by one spare FU slice."""
        return self.fu_area_fraction / self.simd_width

    @property
    def shuffle_power_fraction(self) -> float:
        """PE power fraction of the XRAM shuffle network."""
        return self.module("xram-shuffle-network").power_fraction

    # -- mitigation overheads -------------------------------------------------

    def spare_area_overhead(self, spares: float) -> float:
        """Fractional PE area overhead of ``spares`` spare FU slices.

        Table 1's area column: each spare replicates one FU slice of the
        57.8 %-of-PE functional-unit array.
        """
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        return self.area_per_spare * spares

    def spare_power_overhead(self, spares: float) -> float:
        """Fractional PE power overhead of ``spares`` spare FU slices.

        Faulty/unused FUs are power-gated, so the run-time cost is the
        widened shuffle network (which runs at full voltage): the XRAM's
        13.7 % of PE power grows ~ (width')^1.5 (Table 1's power column).
        """
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        growth = (1.0 + spares / self.simd_width) ** SHUFFLE_WIDTH_EXPONENT
        return self.shuffle_power_fraction * (growth - 1.0)

    def margin_power_overhead(self, vdd: float, margin: float) -> float:
        """Fractional PE power overhead of a supply margin on the DV domain.

        Switching power scales with Vdd^2 and the margin applies to every
        module in the near-threshold domain (43 % of PE power):
        ``0.43 * (((vdd+margin)/vdd)^2 - 1)`` (Table 2's power column).
        """
        if vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        if margin < 0:
            raise ConfigurationError("margin must be >= 0")
        return self.dv_power_fraction * (((vdd + margin) / vdd) ** 2 - 1.0)

    def combined_power_overhead(self, spares: float, vdd: float,
                                margin: float) -> float:
        """Power overhead of a combined (spares, margin) design point
        (Table 3): the two contributions are additive to first order."""
        return self.spare_power_overhead(spares) + self.margin_power_overhead(vdd, margin)


#: The default PE instance used throughout the library.
DIET_SODA = DietSodaPE()

# The reconstructed breakdown must reproduce the reverse-engineered
# constants the published tables imply.
assert math.isclose(100 * DIET_SODA.area_per_spare, AREA_PER_SPARE_PCT, rel_tol=1e-6)
assert math.isclose(DIET_SODA.dv_power_fraction, DV_DOMAIN_POWER_FRACTION, abs_tol=1e-9)
