"""SIMD architecture substrate: the Diet SODA processing element, its
XRAM shuffle crossbar, and structural lane/datapath models used by the
sparing and mitigation studies.
"""

from repro.simd.diet_soda import DietSodaPE, Module, VoltageDomain, DIET_SODA
from repro.simd.lane import SIMDLane, LaneState
from repro.simd.datapath import SIMDDatapath
from repro.simd.xram import XRAMCrossbar
from repro.simd.shuffle import ShuffleNetwork
from repro.simd.floorplan import LaneFloorplan
from repro.simd.workloads import (
    KERNELS,
    ExecutionReport,
    Phase,
    SIMDMachine,
    Workload,
    color_space_conversion,
    conv2d,
    execute,
    fft,
    fir_filter,
)

__all__ = [
    "DietSodaPE",
    "Module",
    "VoltageDomain",
    "DIET_SODA",
    "SIMDLane",
    "LaneState",
    "SIMDDatapath",
    "XRAMCrossbar",
    "ShuffleNetwork",
    "LaneFloorplan",
    "KERNELS",
    "ExecutionReport",
    "Phase",
    "SIMDMachine",
    "Workload",
    "color_space_conversion",
    "conv2d",
    "execute",
    "fft",
    "fir_filter",
]
