"""Physical floorplan of the SIMD lane array.

Diet SODA's 128 16-bit lanes are tiled as four 32-lane groups (one per
memory bank, Appendix B Fig. 10).  The floorplan provides lane centre
coordinates for the spatial-variation analyses: how far apart two lanes
are decides how correlated their process variation is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LaneFloorplan"]


@dataclass(frozen=True)
class LaneFloorplan:
    """A tiled SIMD lane array.

    Parameters
    ----------
    n_lanes:
        Total lanes (including spares).
    lane_pitch_mm:
        Centre-to-centre lane spacing within a row (16-bit datapath slice
        pitch, ~60-100 um in 90 nm).
    lanes_per_row:
        Lanes per placement row; rows stack vertically.
    row_pitch_mm:
        Vertical spacing between rows.
    """

    n_lanes: int = 128
    lane_pitch_mm: float = 0.08
    lanes_per_row: int = 32
    row_pitch_mm: float = 0.9

    def __post_init__(self) -> None:
        if self.n_lanes < 1 or self.lanes_per_row < 1:
            raise ConfigurationError("lane counts must be >= 1")
        if self.lane_pitch_mm <= 0 or self.row_pitch_mm <= 0:
            raise ConfigurationError("pitches must be positive")

    def lane_positions_mm(self) -> np.ndarray:
        """``(n_lanes, 2)`` lane-centre coordinates in mm."""
        idx = np.arange(self.n_lanes)
        row = idx // self.lanes_per_row
        col = idx % self.lanes_per_row
        return np.stack([col * self.lane_pitch_mm,
                         row * self.row_pitch_mm], axis=1)

    def lane_distance_mm(self, i: int, j: int) -> float:
        """Euclidean distance between two lane centres."""
        pos = self.lane_positions_mm()
        if not (0 <= i < self.n_lanes and 0 <= j < self.n_lanes):
            raise ConfigurationError("lane index out of range")
        return float(np.hypot(*(pos[i] - pos[j])))

    @property
    def extent_mm(self) -> tuple:
        """(width, height) of the lane array bounding box."""
        pos = self.lane_positions_mm()
        return (float(pos[:, 0].max() - pos[:, 0].min()),
                float(pos[:, 1].max() - pos[:, 1].min()))
