"""SIMD shuffle-network (SSN) power/area scaling model.

The Diet SODA SSN is a 128x128 XRAM crossbar operating at full voltage.
Structural duplication widens it to ``(128 + spares)`` inputs, and —
unlike the power-gated spare FUs themselves — the widened crossbar burns
power at run time.  This module wraps the scaling law used by the
overhead accounting in :class:`repro.simd.diet_soda.DietSodaPE` in an
object that the placement studies can also query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.paper_anchors import (
    SHUFFLE_POWER_FRACTION_PCT,
    SHUFFLE_WIDTH_EXPONENT,
)
from repro.errors import ConfigurationError

__all__ = ["ShuffleNetwork"]


@dataclass(frozen=True)
class ShuffleNetwork:
    """Width-scaling model of the full-voltage shuffle network.

    Parameters
    ----------
    base_width:
        Width the ``power_fraction`` is quoted at (128 for Diet SODA).
    power_fraction:
        Fraction of PE power at ``base_width`` (0.137 for Diet SODA).
    exponent:
        Power-vs-width scaling exponent (1.5: wire-dominated crossbar).
    """

    base_width: int = 128
    power_fraction: float = SHUFFLE_POWER_FRACTION_PCT / 100.0
    exponent: float = SHUFFLE_WIDTH_EXPONENT

    def __post_init__(self) -> None:
        if self.base_width < 1:
            raise ConfigurationError("base_width must be >= 1")
        if not 0.0 < self.power_fraction < 1.0:
            raise ConfigurationError("power_fraction must be in (0, 1)")
        if self.exponent < 1.0:
            raise ConfigurationError(
                "a crossbar cannot scale sub-linearly with width")

    def power_at_width(self, width: float) -> float:
        """PE-power fraction of the network widened to ``width`` lanes."""
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        return self.power_fraction * (width / self.base_width) ** self.exponent

    def widening_overhead(self, spares: float) -> float:
        """Added PE-power fraction from widening by ``spares`` lanes."""
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        return self.power_at_width(self.base_width + spares) - self.power_fraction
