"""Behavioural model of the XRAM swizzle crossbar (Satpathy et al., VLSI'11).

The XRAM is an SRAM-topology crossbar: each crosspoint stores a
configuration bit, each output column drives from exactly one selected
input row.  The paper uses it for two things:

* the SIMD shuffle network (SSN) of Diet SODA, and
* *global* spare placement — because the crossbar can route any input to
  any output, a spare FU anywhere can replace a faulty FU anywhere,
  avoiding the clustered-local-sparing failure mode (Appendix D).

This model implements configuration storage, routing semantics, validity
checking, multiple stored configurations (the real XRAM holds several
shuffle patterns at the crosspoints) and the faulty-lane bypass generator
of the paper's Figure 12, plus first-order area/power scaling laws used by
the overhead accounting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, RoutingError

__all__ = ["XRAMCrossbar"]


class XRAMCrossbar:
    """An ``n_inputs x n_outputs`` crossbar with stored configurations.

    Parameters
    ----------
    n_inputs:
        Number of input rows (physical FUs, including spares).
    n_outputs:
        Number of output columns (logical lanes consumed downstream).
        Defaults to ``n_inputs``.
    """

    def __init__(self, n_inputs: int, n_outputs: int | None = None) -> None:
        if n_inputs < 1:
            raise ConfigurationError("n_inputs must be >= 1")
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs) if n_outputs is not None else int(n_inputs)
        if self.n_outputs < 1:
            raise ConfigurationError("n_outputs must be >= 1")
        self._configs: dict = {}
        self._active: str | None = None

    # -- configuration management ------------------------------------------

    def store_configuration(self, name: str, mapping) -> None:
        """Store a routing configuration at the crosspoints.

        ``mapping`` is an array of length ``n_outputs``: ``mapping[j] = i``
        routes input row ``i`` to output column ``j``.  Fan-out (one input
        feeding several outputs) is legal — the XRAM supports broadcast
        shuffles; an out-of-range input is not.
        """
        mapping = np.asarray(mapping, dtype=int)
        if mapping.shape != (self.n_outputs,):
            raise RoutingError(
                f"mapping must have shape ({self.n_outputs},), got {mapping.shape}")
        if np.any(mapping < 0) or np.any(mapping >= self.n_inputs):
            raise RoutingError("mapping refers to inputs outside the crossbar")
        self._configs[str(name)] = mapping.copy()
        if self._active is None:
            self._active = str(name)

    def select(self, name: str) -> None:
        """Make a stored configuration the active one."""
        if name not in self._configs:
            raise RoutingError(f"no configuration named {name!r} stored")
        self._active = str(name)

    @property
    def configurations(self) -> tuple:
        """Names of the stored configurations."""
        return tuple(self._configs)

    @property
    def active_mapping(self) -> np.ndarray:
        """The active output->input mapping (copy)."""
        if self._active is None:
            raise RoutingError("no configuration stored yet")
        return self._configs[self._active].copy()

    def crosspoint_matrix(self, name: str | None = None) -> np.ndarray:
        """Boolean ``(n_inputs, n_outputs)`` crosspoint matrix of a config.

        Exactly one ``True`` per output column (SRAM cell content).
        """
        mapping = (self._configs[name] if name is not None
                   else self.active_mapping)
        matrix = np.zeros((self.n_inputs, self.n_outputs), dtype=bool)
        matrix[mapping, np.arange(self.n_outputs)] = True
        return matrix

    # -- routing -------------------------------------------------------------

    def route(self, inputs):
        """Route a vector of input values through the active configuration."""
        inputs = np.asarray(inputs)
        if inputs.shape[0] != self.n_inputs:
            raise RoutingError(
                f"expected {self.n_inputs} input values, got {inputs.shape[0]}")
        return inputs[self.active_mapping]

    def is_permutation(self, name: str | None = None) -> bool:
        """True if the configuration routes distinct inputs to all outputs."""
        mapping = (self._configs[name] if name is not None
                   else self.active_mapping)
        return len(np.unique(mapping)) == len(mapping)

    # -- faulty-lane bypass (paper Fig. 12) ------------------------------------

    def bypass_configuration(self, faulty, name: str = "bypass") -> np.ndarray:
        """Build and store a configuration that skips faulty input rows.

        Implements the paper's global-sparing repair: logical lane ``j`` is
        served by the ``j``-th *healthy* physical FU in row order, so any
        pattern of up to ``n_inputs - n_outputs`` faults (including bursts
        in adjacent lanes) is repairable.

        Parameters
        ----------
        faulty:
            Iterable of faulty input-row indices (test-time fault map).

        Returns
        -------
        numpy.ndarray
            The stored mapping.

        Raises
        ------
        RoutingError
            If fewer than ``n_outputs`` healthy inputs remain.
        """
        faulty = set(int(i) for i in faulty)
        for i in faulty:
            if not 0 <= i < self.n_inputs:
                raise RoutingError(f"faulty index {i} outside crossbar inputs")
        healthy = [i for i in range(self.n_inputs) if i not in faulty]
        if len(healthy) < self.n_outputs:
            raise RoutingError(
                f"{len(faulty)} faults leave only {len(healthy)} healthy FUs "
                f"for {self.n_outputs} lanes")
        mapping = np.asarray(healthy[: self.n_outputs], dtype=int)
        self.store_configuration(name, mapping)
        self.select(name)
        return mapping

    # -- physical scaling ----------------------------------------------------

    def relative_power(self, reference_inputs: int = 128,
                       exponent: float = 1.5) -> float:
        """Power relative to a ``reference_inputs``-wide XRAM.

        Crossbar energy is wire dominated; the paper's Table 1 power
        overheads are consistent with ``power ~ width^1.5``.
        """
        if reference_inputs < 1:
            raise ConfigurationError("reference_inputs must be >= 1")
        return (self.n_inputs / reference_inputs) ** exponent

    def relative_area(self, reference_inputs: int = 128) -> float:
        """Area relative to a reference crossbar (crosspoints ~ n_in*n_out)."""
        if reference_inputs < 1:
            raise ConfigurationError("reference_inputs must be >= 1")
        return (self.n_inputs * self.n_outputs) / float(reference_inputs ** 2)
