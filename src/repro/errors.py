"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TechnologyError(ReproError):
    """An unknown technology node was requested, or a technology card is
    internally inconsistent (e.g. a non-positive sigma)."""


class VoltageRangeError(ReproError, ValueError):
    """A supply voltage is outside the range a model is valid for."""


class CalibrationError(ReproError):
    """The calibration fitter failed to converge or was given anchors it
    cannot represent."""


class ConvergenceError(ReproError):
    """An iterative solver (spare count, voltage margin) failed to find a
    feasible answer within its search bounds."""


class NetlistError(ReproError):
    """A structural netlist is malformed (dangling net, combinational
    cycle, duplicate cell name, ...)."""


class RoutingError(ReproError):
    """An XRAM crossbar configuration is infeasible (more faulty lanes
    than spares, non-permutation routing request, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An API was called with inconsistent parameters (e.g. more spares
    dropped than lanes instantiated)."""


class BackendUnavailableError(ReproError, ImportError):
    """A kernel execution backend's optional dependency (numba, cupy)
    is not importable on this machine.  :func:`repro.core.backends.
    resolve_backend` catches this and degrades to the ``numpy`` backend
    with a warning; only :func:`~repro.core.backends.get_backend`
    surfaces it directly."""


class ShardExecutionError(ReproError):
    """One or more parallel shards failed even after the runtime's retry
    budget was exhausted.  Carries the failed shard ids and the last
    error observed per shard, so callers can report exactly which part
    of a sweep could not be recovered."""

    def __init__(self, message: str, *, shards=(), causes=()) -> None:
        super().__init__(message)
        self.shards = tuple(shards)
        self.causes = tuple(causes)


class SolverNumericalError(ReproError):
    """The quantile solver produced a non-finite result that neither the
    robust bracketing path nor the Monte-Carlo last resort could
    recover.  Carries the offending ``(vdd, q, spares)`` coordinates."""

    def __init__(self, message: str, *, points=()) -> None:
        super().__init__(message)
        self.points = tuple(points)


class InjectedFaultError(ReproError):
    """An artificial failure raised by the deterministic fault-injection
    lab (:mod:`repro.resilience.faultlab`); only ever seen under
    ``REPRO_FAULTS`` / ``--inject-faults``."""


class FaultSpecError(ConfigurationError):
    """A fault-injection spec string could not be parsed (unknown fault
    kind, malformed target or count)."""
