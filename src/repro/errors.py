"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TechnologyError(ReproError):
    """An unknown technology node was requested, or a technology card is
    internally inconsistent (e.g. a non-positive sigma)."""


class VoltageRangeError(ReproError, ValueError):
    """A supply voltage is outside the range a model is valid for."""


class CalibrationError(ReproError):
    """The calibration fitter failed to converge or was given anchors it
    cannot represent."""


class ConvergenceError(ReproError):
    """An iterative solver (spare count, voltage margin) failed to find a
    feasible answer within its search bounds."""


class NetlistError(ReproError):
    """A structural netlist is malformed (dangling net, combinational
    cycle, duplicate cell name, ...)."""


class RoutingError(ReproError):
    """An XRAM crossbar configuration is infeasible (more faulty lanes
    than spares, non-permutation routing request, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An API was called with inconsistent parameters (e.g. more spares
    dropped than lanes instantiated)."""
