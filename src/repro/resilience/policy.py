"""Retry/timeout policy for the fault-tolerant parallel runtime.

A :class:`RetryPolicy` bundles every knob the shard dispatcher needs:
bounded per-shard retries, the hung-worker progress deadline, and the
exponential-backoff schedule.  Backoff jitter is *deterministic* — a hash
of ``(shard, attempt)`` — so a chaos run replays identically for a fixed
fault plan, in keeping with the runtime's bit-reproducibility contract
(the delays only shape timing, never results).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy", "DEFAULT_SHARD_TIMEOUT_S", "DEFAULT_MAX_RETRIES"]

#: Generous default progress deadline (seconds): no shard in the repo's
#: workloads runs longer than a few seconds, so only a genuinely hung
#: worker trips it.
DEFAULT_SHARD_TIMEOUT_S = 300.0

#: Default retry budget per shard (beyond the first attempt).
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class RetryPolicy:
    """How the shard dispatcher reacts to failures.

    Parameters
    ----------
    max_retries:
        Retries per shard after its first failed attempt; exhaustion
        raises :class:`~repro.errors.ShardExecutionError`.
    shard_timeout_s:
        Progress deadline: if *no* in-flight shard completes within this
        window the pool is declared hung, its workers are terminated, and
        the unfinished shards are reassigned to a fresh pool.
    backoff_base_s / backoff_cap_s:
        Exponential-backoff schedule for retry waits: attempt ``k`` waits
        ``min(cap, base * 2**(k-1))`` scaled by deterministic jitter in
        ``[0.5, 1.0)``.
    max_pool_respawns:
        Pool re-spawns (after worker crashes or hangs) before the
        dispatcher degrades to in-process serial execution of the
        remaining shards — the recovery of last resort.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be > 0, got {self.shard_timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.max_pool_respawns < 0:
            raise ConfigurationError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}")

    def backoff_s(self, shard: int, attempt: int) -> float:
        """Deterministic jittered backoff before retry ``attempt`` (>= 1)."""
        attempt = max(1, int(attempt))
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * 2.0 ** (attempt - 1))
        frac = zlib.crc32(f"{int(shard)}:{attempt}".encode()) / 2.0 ** 32
        return base * (0.5 + 0.5 * frac)
