"""The fault/recovery ledger: a structured record of every resilience event.

Counters (:mod:`repro.obs.metrics`) answer *how many* retries or cache
quarantines a run paid; the :class:`FaultLedger` answers *what exactly
happened*: each recovery action — shard retry, hung-worker timeout, pool
respawn, cache quarantine, solver fallback — appends one ordered,
JSON-safe event dict.  The active runtime carries one ledger
(:class:`repro.runtime.context.ReproRuntime`), the run manifest embeds it
verbatim (``--metrics FILE``), and chaos tests assert on it.

Events deliberately carry no wall-clock data, so a fault-free manifest is
byte-deterministic and a faulted one is deterministic for a fixed fault
plan.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["FaultLedger", "current_ledger", "activate_ledger"]


class FaultLedger:
    """Ordered record of fault and recovery events for one run."""

    def __init__(self) -> None:
        self.events: list = []

    def record(self, event: str, **details) -> None:
        """Append one event; ``details`` must be JSON-serialisable."""
        self.events.append({"event": str(event), **details})

    def counts(self) -> dict:
        """Event-kind -> occurrence count (sorted by kind)."""
        tally: dict = {}
        for ev in self.events:
            kind = ev["event"]
            tally[kind] = tally.get(kind, 0) + 1
        return dict(sorted(tally.items()))

    def as_dict(self) -> dict:
        """Serialisable snapshot for the run manifest."""
        return {"events": list(self.events), "counts": self.counts()}

    def render(self) -> str:
        """Aligned text report of the fault ledger (``--profile`` output)."""
        lines = ["resilience events", "-----------------"]
        if not self.events:
            return "\n".join(lines + ["  (no faults or recoveries)"])
        counts = self.counts()
        width = max(len(kind) for kind in counts)
        lines += [f"  {kind.ljust(width)}  {n}" for kind, n in counts.items()]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


#: Fallback ledger for code running outside any activated runtime
#: (e.g. a bare ParallelSampler in a script); never reaches a manifest.
_GLOBAL_LEDGER = FaultLedger()

_ACTIVE: ContextVar = ContextVar("repro_fault_ledger", default=None)


def current_ledger() -> FaultLedger:
    """The active ledger (never ``None``; falls back to a module global)."""
    ledger = _ACTIVE.get()
    return ledger if ledger is not None else _GLOBAL_LEDGER


@contextmanager
def activate_ledger(ledger: FaultLedger):
    """Make ``ledger`` the :func:`current_ledger` inside the block."""
    token = _ACTIVE.set(ledger)
    try:
        yield ledger
    finally:
        _ACTIVE.reset(token)
