"""Resilience layer: graceful degradation for the execution runtime.

The paper's datapath tolerates slow or faulty lanes with spare lanes
(Table 1); this package gives the *runtime* the same property for its own
components.  Three pieces:

* :class:`RetryPolicy` — bounded shard retries, hung-worker deadlines and
  deterministic-jitter backoff consumed by
  :class:`~repro.runtime.parallel.ParallelSampler`, whose recovery ladder
  is retry -> pool respawn/reassignment -> in-process serial fallback.
  Because shards are pure functions of ``SeedSequence``-derived streams,
  every recovered run is bit-identical to the fault-free one.
* :class:`FaultLedger` — the ordered record of every fault and recovery
  event, embedded in run manifests and rendered under ``--profile``.
* :mod:`~repro.resilience.faultlab` — seeded, spec-driven injectors
  (worker crash/hang, shard exception, cache corruption, solver NaN)
  activated via ``REPRO_FAULTS`` / ``--inject-faults SPEC``, so chaos
  scenarios replay deterministically in tests and CI.

The crash-safe cache lives in :mod:`repro.runtime.cache` (checksummed
entries, atomic writes, advisory locks, quarantine-not-crash reads) and
the solver guardrails in :meth:`ChipDelayEngine.chip_quantile_batch`
(structured :class:`~repro.errors.SolverNumericalError`, scalar-bracketing
then Monte-Carlo fallbacks); both report through the ledger and the
``resilience.*`` metrics.
"""

from __future__ import annotations

from repro.resilience.faultlab import (
    ENV_FAULTS,
    ENV_HANG_SECONDS,
    ENV_SLOW_SECONDS,
    FAULT_KINDS,
    NETWORK_FAULTS,
    WORKER_FAULTS,
    FaultPlan,
    active_plan,
    fire_shard_faults,
    install_faults,
    parse_faults,
    slow_seconds,
)
from repro.resilience.ledger import FaultLedger, activate_ledger, current_ledger
from repro.resilience.policy import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_SHARD_TIMEOUT_S,
    RetryPolicy,
)

__all__ = [
    "RetryPolicy",
    "FaultLedger",
    "FaultPlan",
    "parse_faults",
    "active_plan",
    "install_faults",
    "fire_shard_faults",
    "current_ledger",
    "activate_ledger",
    "FAULT_KINDS",
    "WORKER_FAULTS",
    "NETWORK_FAULTS",
    "ENV_FAULTS",
    "ENV_HANG_SECONDS",
    "ENV_SLOW_SECONDS",
    "slow_seconds",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_SHARD_TIMEOUT_S",
]
