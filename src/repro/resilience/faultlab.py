"""Deterministic fault-injection lab.

The paper tolerates faulty lanes with spares; this module lets the
*runtime* prove it tolerates faulty components — reproducibly.  A
:class:`FaultPlan` is parsed from a spec string (CLI ``--inject-faults``
or the ``REPRO_FAULTS`` environment variable) and fires each fault a
bounded number of times at a named target, so a chaos scenario replays
identically in tests and CI.

Spec grammar (comma-separated entries)::

    SPEC  := ENTRY ("," ENTRY)*
    ENTRY := KIND ":" TARGET [":" COUNT]
    KIND  := worker_crash | worker_hang | shard_error
             | cache_corrupt | solver_nan
             | conn_reset | slow_read | partial_write | garbled_response
    TARGET:= non-negative int        (shard / entry / point / request index)
    COUNT := positive int | "inf"    (default 1 — one-shot)

Examples: ``worker_crash:1`` (the worker running shard 1 dies once),
``shard_error:0:inf`` (shard 0 fails on every attempt — retry
exhaustion), ``cache_corrupt:0`` (the first cache entry is corrupted on
the next load), ``solver_nan:2`` (the 3rd unique solver point is
poisoned with NaN once), ``conn_reset:1`` (the serve transport aborts
the connection instead of answering the 2nd request).

Fault kinds split into three delivery classes:

* **worker faults** (``worker_crash``, ``worker_hang``, ``shard_error``)
  are *consumed by the dispatching parent* and ride the task payload to
  the pool worker, which fires them via :func:`fire_shard_faults` — so a
  fault stays one-shot across retries and pool respawns.
* **process-local faults** (``cache_corrupt``, ``solver_nan``) fire in
  whichever process holds the active plan; a plan remembers the pid it
  was created in and never fires from a forked child, so pool workers do
  not double-consume the driver's plan.
* **network faults** (``conn_reset``, ``slow_read``, ``partial_write``,
  ``garbled_response``) fire at the serve transport
  (:class:`~repro.serve.server.SignoffServer`), targeted by the
  server's request ordinal: ``conn_reset`` aborts the socket without a
  response, ``slow_read`` stalls the response by
  :data:`ENV_SLOW_SECONDS` seconds, ``partial_write`` sends a truncated
  response then aborts, ``garbled_response`` answers with non-HTTP
  bytes.  They exercise the *client's* resilience
  (:class:`~repro.serve.resilient.ResilientServeClient`) and are
  deterministic for a fixed request sequence.
"""

from __future__ import annotations

import math
import os
import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar

from repro.errors import FaultSpecError, InjectedFaultError

__all__ = ["FaultPlan", "parse_faults", "active_plan", "install_faults",
           "fire_shard_faults", "FAULT_KINDS", "WORKER_FAULTS",
           "NETWORK_FAULTS", "ENV_FAULTS", "ENV_HANG_SECONDS",
           "ENV_SLOW_SECONDS", "slow_seconds"]

#: Environment variable carrying a fault spec (same grammar as the CLI).
ENV_FAULTS = "REPRO_FAULTS"

#: How long an injected hang sleeps (seconds); the parent's watchdog is
#: expected to terminate the worker long before this elapses.
ENV_HANG_SECONDS = "REPRO_FAULT_HANG_S"

#: How long an injected ``slow_read`` stalls the response (seconds);
#: kept short so chaos tests bound their own wall time.
ENV_SLOW_SECONDS = "REPRO_FAULT_SLOW_S"

#: Kinds injected at the serve transport, targeted by request ordinal.
NETWORK_FAULTS = ("conn_reset", "slow_read", "partial_write",
                  "garbled_response")

#: Every fault kind the lab can inject.
FAULT_KINDS = ("worker_crash", "worker_hang", "shard_error",
               "cache_corrupt", "solver_nan") + NETWORK_FAULTS

#: Kinds dispatched to pool workers via the task payload.
WORKER_FAULTS = ("worker_crash", "worker_hang", "shard_error")

#: Exit code of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_CODE = 117


class FaultPlan:
    """A parsed, consumable set of injected faults.

    ``remaining`` maps ``(kind, target)`` to how many more times that
    fault may fire (``math.inf`` for unbounded).  Consumption mutates the
    plan, making every fault one-shot by default.
    """

    def __init__(self, remaining: dict, spec: str) -> None:
        self._remaining = dict(remaining)
        self.spec = str(spec)
        self._pid = os.getpid()

    def is_local(self) -> bool:
        """True in the process the plan was created in (not fork children)."""
        return os.getpid() == self._pid

    def pending(self, kind: str) -> list:
        """Targets of ``kind`` with shots remaining (sorted, non-consuming)."""
        if not self.is_local():
            return []
        return sorted(t for (k, t), n in self._remaining.items()
                      if k == kind and n > 0)

    def consume(self, kind: str, target: int) -> bool:
        """Fire-check: take one shot of ``(kind, target)`` if any remain."""
        if not self.is_local():
            return False
        key = (kind, int(target))
        left = self._remaining.get(key, 0)
        if left <= 0:
            return False
        self._remaining[key] = left - 1
        return True

    def shard_faults(self, shard: int):
        """Worker-fault kinds firing on ``shard`` this attempt (consumed).

        Called by the dispatcher when it builds a task payload; the
        returned kinds travel with the task and fire inside the worker.
        """
        fired = [k for k in WORKER_FAULTS if self.consume(k, shard)]
        return fired or None

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec!r})"


def parse_faults(spec: str):
    """Parse a fault spec string into a :class:`FaultPlan` (or ``None``).

    Raises :class:`~repro.errors.FaultSpecError` on unknown kinds or
    malformed entries — the CLI surfaces this as exit code 2, matching
    the unknown-experiment convention.
    """
    if spec is None:
        return None
    spec = spec.strip()
    if not spec:
        return None
    remaining: dict = {}
    for entry in spec.split(","):
        fields = [f.strip() for f in entry.strip().split(":")]
        if len(fields) not in (2, 3) or not fields[0]:
            raise FaultSpecError(
                f"malformed fault entry {entry.strip()!r}; expected "
                f"KIND:TARGET[:COUNT]")
        kind = fields[0]
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; known kinds: "
                + ", ".join(FAULT_KINDS))
        try:
            target = int(fields[1])
        except ValueError:
            raise FaultSpecError(
                f"fault target must be an integer, got {fields[1]!r}") \
                from None
        if target < 0:
            raise FaultSpecError(
                f"fault target must be >= 0, got {target}")
        count: float = 1
        if len(fields) == 3:
            if fields[2].lower() in ("inf", "forever"):
                count = math.inf
            else:
                try:
                    count = int(fields[2])
                except ValueError:
                    raise FaultSpecError(
                        f"fault count must be a positive integer or 'inf', "
                        f"got {fields[2]!r}") from None
                if count < 1:
                    raise FaultSpecError(
                        f"fault count must be >= 1, got {count}")
        key = (kind, target)
        remaining[key] = remaining.get(key, 0) + count
    return FaultPlan(remaining, spec)


_ACTIVE: ContextVar = ContextVar("repro_fault_plan", default=None)

#: Per-process memo of the environment-derived plan: (spec, plan).
_ENV_PLAN: list = [None, None]


def active_plan():
    """The installed :class:`FaultPlan`, or one parsed from ``REPRO_FAULTS``.

    Returns ``None`` when no faults are configured — the overwhelmingly
    common case, costing one ContextVar read and one dict lookup.
    """
    plan = _ACTIVE.get()
    if plan is not None:
        return plan
    spec = os.environ.get(ENV_FAULTS, "")
    if not spec.strip():
        return None
    cached = _ENV_PLAN[1]
    if _ENV_PLAN[0] != spec or cached is None or not cached.is_local():
        _ENV_PLAN[0] = spec
        _ENV_PLAN[1] = parse_faults(spec)
    return _ENV_PLAN[1]


def install_faults(plan):
    """Context manager making ``plan`` the :func:`active_plan` (None = no-op)."""
    if plan is None:
        return nullcontext(None)

    @contextmanager
    def _install():
        token = _ACTIVE.set(plan)
        try:
            yield plan
        finally:
            _ACTIVE.reset(token)

    return _install()


def hang_seconds() -> float:
    """How long an injected hang sleeps (``REPRO_FAULT_HANG_S``)."""
    try:
        return float(os.environ.get(ENV_HANG_SECONDS, "3600"))
    except ValueError:
        return 3600.0


def slow_seconds() -> float:
    """How long an injected ``slow_read`` stalls (``REPRO_FAULT_SLOW_S``)."""
    try:
        return float(os.environ.get(ENV_SLOW_SECONDS, "0.25"))
    except ValueError:
        return 0.25


def fire_shard_faults(faults, shard) -> None:
    """Worker-side: act on the fault kinds attached to a task payload."""
    for kind in faults or ():
        if kind == "worker_crash":
            # A hard exit, not an exception: the pool sees a dead worker
            # (BrokenProcessPool), exactly like a segfault or OOM kill.
            os._exit(CRASH_EXIT_CODE)
        elif kind == "worker_hang":
            time.sleep(hang_seconds())
        elif kind == "shard_error":
            raise InjectedFaultError(
                f"injected shard_error on shard {shard}")
