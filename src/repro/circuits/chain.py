"""Gate-chain test structures (the paper's Fig. 1/2/11 vehicles).

A :class:`GateChain` is an ordered list of library gates with per-stage
fanouts; :func:`fo4_chain` builds the canonical chain of N fanout-of-4
inverters.  :class:`RingOscillator` wraps an odd-length inverter chain and
reports oscillation frequency — the standard silicon variation monitor,
useful as an extra validation structure.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gates import get_gate
from repro.errors import ConfigurationError

__all__ = ["GateChain", "fo4_chain", "RingOscillator"]


class GateChain:
    """An ordered chain of gates with fixed per-stage fanout.

    Parameters
    ----------
    gates:
        Sequence of :class:`~repro.circuits.gates.Gate` (or names).
    fanout:
        Electrical effort per stage, scalar or per-stage sequence.
    """

    def __init__(self, gates, fanout=4.0) -> None:
        self.gates = tuple(get_gate(g) if isinstance(g, str) else g
                           for g in gates)
        if not self.gates:
            raise ConfigurationError("a chain needs at least one gate")
        fanout = np.broadcast_to(np.asarray(fanout, dtype=float),
                                 (len(self.gates),)).copy()
        if np.any(fanout <= 0):
            raise ConfigurationError("fanouts must be positive")
        self.fanout = fanout

    def __len__(self) -> int:
        return len(self.gates)

    def nominal_delay(self, tech, vdd) -> float:
        """Variation-free chain delay in seconds."""
        return float(sum(
            g.delay(tech, vdd, h)
            for g, h in zip(self.gates, self.fanout)))

    def sample_delays(self, tech, vdd, n_samples: int,
                      rng: np.random.Generator, include_die: bool = True):
        """Monte-Carlo chain delays (seconds), shape ``(n_samples,)``.

        Per-gate threshold draws use each cell's Pelgrom ``size_scale``;
        the chain is co-located, so the lane- and die-level draws are
        shared along it (one each per sample).
        """
        var = tech.variation
        n_gates = len(self.gates)
        delays = np.zeros((n_samples, n_gates))
        if include_die:
            die = var.sample_dies(rng, n_samples)
            lane = var.sample_lanes(rng, n_samples)
            corr_dvth = die.dvth + lane.dvth
            corr_mult = (1.0 + die.mult) * (1.0 + lane.mult)
        else:
            corr_dvth = np.zeros(n_samples)
            corr_mult = 1.0
        for i, (gate, h) in enumerate(zip(self.gates, self.fanout)):
            draws = var.sample_gates(rng, n_samples,
                                     size_scale=gate.size_scale)
            delays[:, i] = gate.delay(tech, vdd, h,
                                      dvth=draws.dvth + corr_dvth,
                                      mult=draws.mult)
        return delays.sum(axis=1) * corr_mult


def fo4_chain(length: int = 50) -> GateChain:
    """The paper's critical-path proxy: ``length`` FO4 inverters."""
    if length < 1:
        raise ConfigurationError("chain length must be >= 1")
    return GateChain(["inv"] * length, fanout=4.0)


class RingOscillator:
    """An odd-stage inverter ring (silicon variation monitor).

    Frequency is ``1 / (2 * N * t_stage)``; its spread across dies tracks
    the correlated variation, making it the classic test-chip structure
    for separating variation scales.
    """

    def __init__(self, stages: int = 11, fanout: float = 1.0) -> None:
        if stages < 3 or stages % 2 == 0:
            raise ConfigurationError("a ring oscillator needs an odd number "
                                     "of stages >= 3")
        self.stages = int(stages)
        self.chain = GateChain(["inv"] * stages, fanout=fanout)

    def nominal_frequency(self, tech, vdd) -> float:
        """Oscillation frequency in Hz without variation."""
        return 1.0 / (2.0 * self.chain.nominal_delay(tech, vdd))

    def sample_frequencies(self, tech, vdd, n_samples: int,
                           rng: np.random.Generator):
        """Monte-Carlo oscillation frequencies in Hz."""
        period = 2.0 * self.chain.sample_delays(tech, vdd, n_samples, rng)
        return 1.0 / period
