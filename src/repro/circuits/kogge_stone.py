"""64-bit Kogge-Stone parallel-prefix adder generator.

The paper validates its 50-FO4-chain critical-path proxy against Drego et
al.'s silicon measurement of a 64-bit Kogge-Stone adder (8.4 % 3sigma/mu
at 0.5 V).  This module generates the standard Kogge-Stone structure as a
:class:`~repro.circuits.netlist.Netlist`:

* bitwise propagate/generate: ``p_i = a_i xor b_i``, ``g_i = a_i and b_i``;
* ``log2(width)`` prefix levels of the ``o`` operator
  ``(G, P) o (G', P') = (G + P G', P P')`` built from AOI/NAND/INV cells;
* sum: ``s_i = p_i xor c_{i-1}``.

The generator is parameterised by width (any power of two) so tests can
exercise small instances exhaustively.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.errors import ConfigurationError

__all__ = ["kogge_stone_adder"]


def kogge_stone_adder(width: int = 64) -> Netlist:
    """Build a ``width``-bit Kogge-Stone adder netlist.

    Inputs are nets ``a<i>``, ``b<i>``; outputs ``s<i>`` and ``cout``.
    """
    if width < 2 or width & (width - 1):
        raise ConfigurationError("width must be a power of two >= 2")
    nl = Netlist(f"kogge_stone_{width}")

    # Pre-processing: propagate (xor) and generate (and = nand + inv).
    for i in range(width):
        nl.add_cell(f"p0_{i}", "xor2", [f"a{i}", f"b{i}"], f"p_0_{i}")
        nl.add_cell(f"gn_{i}", "nand2", [f"a{i}", f"b{i}"], f"gn_0_{i}")
        nl.add_cell(f"g0_{i}", "inv", [f"gn_0_{i}"], f"g_0_{i}")

    # Prefix tree: level l combines bit i with bit i - 2^(l-1).
    level = 0
    stride = 1
    while stride < width:
        level += 1
        for i in range(width):
            g_prev = f"g_{level - 1}_{i}"
            p_prev = f"p_{level - 1}_{i}"
            if i < stride:
                # Pass-through: buffer keeps levels depth-balanced.
                nl.add_cell(f"gbuf_{level}_{i}", "buf", [g_prev],
                            f"g_{level}_{i}")
                nl.add_cell(f"pbuf_{level}_{i}", "buf", [p_prev],
                            f"p_{level}_{i}")
                continue
            g_far = f"g_{level - 1}_{i - stride}"
            p_far = f"p_{level - 1}_{i - stride}"
            # G = g_prev + p_prev * g_far  (AOI21 + INV)
            nl.add_cell(f"gaoi_{level}_{i}", "aoi21",
                        [p_prev, g_far, g_prev], f"gn_{level}_{i}")
            nl.add_cell(f"ginv_{level}_{i}", "inv", [f"gn_{level}_{i}"],
                        f"g_{level}_{i}")
            # P = p_prev * p_far  (NAND2 + INV)
            nl.add_cell(f"pnand_{level}_{i}", "nand2", [p_prev, p_far],
                        f"pn_{level}_{i}")
            nl.add_cell(f"pinv_{level}_{i}", "inv", [f"pn_{level}_{i}"],
                        f"p_{level}_{i}")
        stride *= 2

    # Post-processing: s_i = p_0_i xor carry_{i-1}; carry_i = g_level_i.
    nl.add_cell("s_0", "buf", ["p_0_0"], "s0")
    for i in range(1, width):
        nl.add_cell(f"s_{i}", "xor2", [f"p_0_{i}", f"g_{level}_{i - 1}"],
                    f"s{i}")
    nl.add_cell("cout_buf", "buf", [f"g_{level}_{width - 1}"], "cout")

    for i in range(width):
        nl.mark_output(f"s{i}")
    nl.mark_output("cout")
    return nl
