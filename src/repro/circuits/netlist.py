"""Minimal structural netlist for combinational blocks.

Holds named cells (library gates) connected by nets, supports topological
ordering and path enumeration — enough to express the 64-bit Kogge-Stone
adder the paper cites as a datapath-representative structure and to run
statistical static timing over it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.circuits.gates import Gate, get_gate
from repro.errors import NetlistError

__all__ = ["Cell", "Netlist"]


@dataclass(frozen=True)
class Cell:
    """One gate instance: a library cell with input nets and an output net."""

    name: str
    gate: Gate
    inputs: tuple
    output: str


class Netlist:
    """A combinational netlist.

    Nets are identified by string names.  Primary inputs are nets never
    driven by a cell; primary outputs are declared explicitly (or default
    to nets driving nothing).
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._cells: dict = {}
        self._driver: dict = {}    # net -> cell name
        self._loads: dict = {}     # net -> [cell names]
        self._outputs: list = []

    # -- construction --------------------------------------------------------

    def add_cell(self, name: str, gate, inputs, output: str) -> Cell:
        """Instantiate a gate.  ``gate`` may be a library name or a Gate."""
        if name in self._cells:
            raise NetlistError(f"duplicate cell name {name!r}")
        gate = get_gate(gate) if isinstance(gate, str) else gate
        inputs = tuple(str(i) for i in inputs)
        if len(inputs) != gate.inputs:
            raise NetlistError(
                f"{name}: {gate.name} needs {gate.inputs} inputs, "
                f"got {len(inputs)}")
        output = str(output)
        if output in self._driver:
            raise NetlistError(f"net {output!r} already driven by "
                               f"{self._driver[output]!r}")
        cell = Cell(name=name, gate=gate, inputs=inputs, output=output)
        self._cells[name] = cell
        self._driver[output] = name
        for net in inputs:
            self._loads.setdefault(net, []).append(name)
        return cell

    def mark_output(self, net: str) -> None:
        """Declare a primary output net."""
        if net not in self._outputs:
            self._outputs.append(str(net))

    # -- queries --------------------------------------------------------------

    @property
    def cells(self) -> tuple:
        return tuple(self._cells.values())

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(f"no cell named {name!r}") from None

    @property
    def primary_inputs(self) -> tuple:
        nets = set()
        for cell in self._cells.values():
            nets.update(cell.inputs)
        return tuple(sorted(n for n in nets if n not in self._driver))

    @property
    def primary_outputs(self) -> tuple:
        if self._outputs:
            return tuple(self._outputs)
        return tuple(sorted(n for n in self._driver
                            if n not in self._loads))

    def fanout_of(self, cell_name: str) -> int:
        """Number of cell loads on a cell's output (min 1 for timing)."""
        cell = self.cell(cell_name)
        return max(len(self._loads.get(cell.output, [])), 1)

    # -- ordering ----------------------------------------------------------------

    def topological_order(self) -> list:
        """Cells in topological order; raises on combinational cycles."""
        indegree = {}
        for name, cell in self._cells.items():
            indegree[name] = sum(1 for net in cell.inputs
                                 if net in self._driver)
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order = []
        while ready:
            name = ready.popleft()
            order.append(self._cells[name])
            for load in self._loads.get(self._cells[name].output, []):
                indegree[load] -= 1
                if indegree[load] == 0:
                    ready.append(load)
        if len(order) != len(self._cells):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise NetlistError(f"combinational cycle through {stuck[:5]}...")
        return order

    def logic_depth(self) -> int:
        """Maximum number of cells on any input-to-output path."""
        depth: dict = {}
        for cell in self.topological_order():
            d_in = max((depth.get(net, 0) for net in cell.inputs), default=0)
            depth[cell.output] = d_in + 1
        return max((depth.get(net, 0) for net in self.primary_outputs),
                   default=0)

    def path_to(self, net: str) -> list:
        """One maximal-depth structural path ending at ``net`` (cell list)."""
        depth: dict = {}
        for cell in self.topological_order():
            d_in = max((depth.get(n, 0) for n in cell.inputs), default=0)
            depth[cell.output] = d_in + 1
        path = []
        current = net
        while current in self._driver:
            cell = self._cells[self._driver[current]]
            path.append(cell)
            current = max(cell.inputs, key=lambda n: depth.get(n, 0),
                          default=None)
            if current is None:
                break
        return list(reversed(path))

    # -- functional simulation ---------------------------------------------

    def evaluate(self, inputs: dict) -> dict:
        """Evaluate the combinational logic for one input vector.

        ``inputs`` maps primary-input net names to booleans; returns the
        values of every net.  Used to functionally verify generated
        structures (e.g. that an adder netlist actually adds).
        """
        from repro.circuits.gates import LOGIC_FUNCTIONS
        values = {net: bool(v) for net, v in inputs.items()}
        missing = [n for n in self.primary_inputs if n not in values]
        if missing:
            raise NetlistError(f"missing input values for {missing[:5]}")
        for cell in self.topological_order():
            func = LOGIC_FUNCTIONS.get(cell.gate.name)
            if func is None:
                raise NetlistError(
                    f"no logic function for gate {cell.gate.name!r}")
            values[cell.output] = bool(func(*(values[n] for n in cell.inputs)))
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, cells={self.n_cells}, "
                f"inputs={len(self.primary_inputs)}, "
                f"outputs={len(self.primary_outputs)})")
