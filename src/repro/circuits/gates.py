"""Logical-effort gate library.

Gate delays are expressed in the method-of-logical-effort form

.. math::  d = \\tau \\,(p + g\\,h)

where ``tau`` is the technology time unit, ``p`` the parasitic delay,
``g`` the logical effort and ``h`` the electrical effort (fanout).  We tie
``tau`` to the technology card's FO4 delay: an FO4 inverter has
``d = p_inv + g_inv * 4 = 5`` delay units for the canonical inverter
(``g = 1``, ``p = 1``), so ``tau(V) = FO4(V) / 5`` — this keeps every gate
delay consistent with the calibrated absolute delays, and lets the same
threshold/multiplicative variation draws scale any gate.

Logical-effort values follow the standard Sutherland/Sproull/Harris
numbers for static CMOS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Gate", "GATE_LIBRARY", "get_gate"]

#: An FO4 inverter is p + g*h = 1 + 1*4 = 5 logical-effort units.
_FO4_UNITS = 5.0


@dataclass(frozen=True)
class Gate:
    """One library cell described by logical effort.

    Parameters
    ----------
    name:
        Cell name, e.g. ``"nand2"``.
    logical_effort:
        Logical effort ``g`` (input capacitance ratio vs the inverter at
        equal drive).
    parasitic:
        Parasitic delay ``p`` in units of the inverter parasitic.
    inputs:
        Number of logic inputs.
    size_scale:
        Relative device area vs a reference inverter; sets Pelgrom scaling
        of the *random* threshold sigma (larger gates average more dopant
        fluctuations).
    """

    name: str
    logical_effort: float
    parasitic: float
    inputs: int
    size_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.logical_effort <= 0 or self.parasitic < 0:
            raise ConfigurationError(f"{self.name}: bad effort/parasitic")
        if self.inputs < 1:
            raise ConfigurationError(f"{self.name}: needs >= 1 input")
        if self.size_scale <= 0:
            raise ConfigurationError(f"{self.name}: size_scale must be > 0")

    def effort_delay_units(self, fanout: float) -> float:
        """Delay ``p + g*h`` in logical-effort units."""
        if fanout <= 0:
            raise ConfigurationError("fanout must be positive")
        return self.parasitic + self.logical_effort * fanout

    def delay(self, tech, vdd, fanout: float = 4.0, dvth=0.0, mult=0.0):
        """Absolute gate delay in seconds under variation draws.

        ``tau`` is derived from the card's FO4 delay so that the entire
        library shares the calibrated voltage dependence; the threshold
        draw ``dvth`` perturbs the same transregional drive current.
        """
        units = self.effort_delay_units(fanout)
        fo4 = tech.fo4_delay(vdd, dvth, mult)
        return fo4 * (units / _FO4_UNITS)


#: Static-CMOS logical effort values (Sutherland/Sproull/Harris).
GATE_LIBRARY = {
    "inv": Gate("inv", logical_effort=1.0, parasitic=1.0, inputs=1,
                size_scale=1.0),
    "nand2": Gate("nand2", logical_effort=4.0 / 3.0, parasitic=2.0, inputs=2,
                  size_scale=1.33),
    "nand3": Gate("nand3", logical_effort=5.0 / 3.0, parasitic=3.0, inputs=3,
                  size_scale=1.67),
    "nor2": Gate("nor2", logical_effort=5.0 / 3.0, parasitic=2.0, inputs=2,
                 size_scale=1.67),
    "nor3": Gate("nor3", logical_effort=7.0 / 3.0, parasitic=3.0, inputs=3,
                 size_scale=2.33),
    "xor2": Gate("xor2", logical_effort=4.0, parasitic=4.0, inputs=2,
                 size_scale=2.0),
    "aoi21": Gate("aoi21", logical_effort=2.0, parasitic=3.0, inputs=3,
                  size_scale=1.67),
    "buf": Gate("buf", logical_effort=1.0, parasitic=2.0, inputs=1,
                size_scale=1.0),
}


#: Boolean semantics of each library cell (for functional verification of
#: generated netlists; input order matches the netlist's input lists).
LOGIC_FUNCTIONS = {
    "inv": lambda a: not a,
    "buf": lambda a: a,
    "nand2": lambda a, b: not (a and b),
    "nand3": lambda a, b, c: not (a and b and c),
    "nor2": lambda a, b: not (a or b),
    "nor3": lambda a, b, c: not (a or b or c),
    "xor2": lambda a, b: a != b,
    # AOI21: out = NOT((a AND b) OR c).
    "aoi21": lambda a, b, c: not ((a and b) or c),
}


def get_gate(name: str) -> Gate:
    """Look up a library cell by name."""
    try:
        return GATE_LIBRARY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown gate {name!r}; library has: "
            f"{', '.join(sorted(GATE_LIBRARY))}") from None
