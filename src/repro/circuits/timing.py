"""Monte-Carlo statistical static timing over a netlist.

Propagates per-sample arrival times through the topologically ordered
cells: each cell adds its logical-effort delay under its own threshold /
multiplicative draw, the cell's output arrival is the max over input
arrivals plus the cell delay, and the circuit delay is the max over the
primary outputs.  This is vectorised over Monte-Carlo samples, so a
64-bit Kogge-Stone (about 1.5k cells) times 1000 samples runs in well
under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.errors import ConfigurationError
from repro.units import three_sigma_over_mu

__all__ = ["TimingResult", "StatisticalTimingEngine"]


@dataclass(frozen=True)
class TimingResult:
    """Monte-Carlo timing ensemble for one netlist/voltage."""

    netlist: str
    vdd: float
    delays: np.ndarray          # (n_samples,) circuit delays in seconds
    critical_output: str        # output with the largest mean arrival

    @property
    def mean(self) -> float:
        return float(self.delays.mean())

    @property
    def three_sigma_over_mu(self) -> float:
        """The paper's variation metric, as a fraction."""
        return float(three_sigma_over_mu(self.delays))

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.delays, q))


class StatisticalTimingEngine:
    """Monte-Carlo SSTA for combinational netlists.

    Parameters
    ----------
    tech:
        Technology card (device + variation models).
    seed:
        Seed for the sampling generator.
    """

    def __init__(self, tech, seed: int | None = 0) -> None:
        self.tech = tech
        self.rng = np.random.default_rng(seed)

    def nominal_delay(self, netlist: Netlist, vdd: float) -> float:
        """Variation-free critical-path delay (seconds)."""
        arrival: dict = {}
        worst = 0.0
        for cell in netlist.topological_order():
            t_in = max((arrival.get(net, 0.0) for net in cell.inputs),
                       default=0.0)
            d = float(cell.gate.delay(self.tech, vdd,
                                      fanout=netlist.fanout_of(cell.name)))
            arrival[cell.output] = t_in + d
        for net in netlist.primary_outputs:
            worst = max(worst, arrival.get(net, 0.0))
        return worst

    def run(self, netlist: Netlist, vdd: float, n_samples: int = 1000,
            include_die: bool = True) -> TimingResult:
        """Monte-Carlo timing of ``netlist`` at ``vdd``.

        The block is co-located (one adder macro), so each sample shares
        one lane-level and one die-level draw; every cell additionally
        draws its own within-die variation scaled by its Pelgrom size.
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        var = self.tech.variation
        if include_die:
            die = var.sample_dies(self.rng, n_samples)
            lane = var.sample_lanes(self.rng, n_samples)
            corr_dvth = die.dvth + lane.dvth
            corr_mult = (1.0 + die.mult) * (1.0 + lane.mult)
        else:
            corr_dvth = np.zeros(n_samples)
            corr_mult = 1.0

        arrival: dict = {}
        order = netlist.topological_order()
        for cell in order:
            t_in = None
            for net in cell.inputs:
                t = arrival.get(net)
                if t is None:
                    continue
                t_in = t if t_in is None else np.maximum(t_in, t)
            if t_in is None:
                t_in = 0.0
            draws = var.sample_gates(self.rng, n_samples,
                                     size_scale=cell.gate.size_scale)
            delay = cell.gate.delay(
                self.tech, vdd, fanout=netlist.fanout_of(cell.name),
                dvth=draws.dvth + corr_dvth, mult=draws.mult)
            arrival[cell.output] = t_in + delay

        worst = None
        critical = ""
        for net in netlist.primary_outputs:
            t = arrival.get(net)
            if t is None:
                continue
            if worst is None:
                worst, critical = t, net
            else:
                better = t.mean() > worst.mean()
                worst = np.maximum(worst, t)
                if better:
                    critical = net
        if worst is None:
            raise ConfigurationError(
                f"netlist {netlist.name!r} has no timed outputs")
        return TimingResult(netlist=netlist.name, vdd=float(vdd),
                            delays=worst * corr_mult,
                            critical_output=critical)
