"""Additional adder topologies for the critical-path-proxy study.

The paper justifies its 50-FO4-chain proxy with one datapath structure
(the 64-bit Kogge-Stone measured by Drego et al.).  These generators add
the two classic extremes of the adder design space:

* **ripple-carry** — maximal logic depth (~2 cells/bit), minimal area:
  a long chain, so within-die randomness averages strongly;
* **Brent-Kung** — a sparse prefix tree (~2 log2 N levels), between the
  ripple chain and the dense Kogge-Stone in depth.

Comparing their Monte-Carlo delay variation at matched word width
(:func:`adder_comparison`) extends Fig. 11's chain-length argument to
real topologies: depth, not structure, sets how much variation a
datapath block sees.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.errors import ConfigurationError

__all__ = ["ripple_carry_adder", "brent_kung_adder", "adder_comparison"]


def ripple_carry_adder(width: int = 64) -> Netlist:
    """``width``-bit ripple-carry adder (full adders from 2-level logic).

    Inputs ``a<i>``, ``b<i>``, outputs ``s<i>`` and ``cout``.  Each full
    adder: ``p = a xor b``, ``s = p xor cin``,
    ``cout = nand(nand(a, b), nand(p, cin))``.
    """
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    nl = Netlist(f"ripple_carry_{width}")
    carry = None
    for i in range(width):
        nl.add_cell(f"p_{i}", "xor2", [f"a{i}", f"b{i}"], f"p{i}")
        nl.add_cell(f"g1_{i}", "nand2", [f"a{i}", f"b{i}"], f"gn{i}")
        if carry is None:
            # Bit 0 has no carry-in: s0 = p0, c1 = a0 & b0.
            nl.add_cell(f"s_{i}", "buf", [f"p{i}"], f"s{i}")
            nl.add_cell(f"c_{i}", "inv", [f"gn{i}"], f"c{i}")
        else:
            nl.add_cell(f"s_{i}", "xor2", [f"p{i}", carry], f"s{i}")
            nl.add_cell(f"g2_{i}", "nand2", [f"p{i}", carry], f"pn{i}")
            nl.add_cell(f"c_{i}", "nand2", [f"gn{i}", f"pn{i}"], f"c{i}")
        carry = f"c{i}"
    nl.add_cell("cout_buf", "buf", [carry], "cout")
    for i in range(width):
        nl.mark_output(f"s{i}")
    nl.mark_output("cout")
    return nl


def brent_kung_adder(width: int = 64) -> Netlist:
    """``width``-bit Brent-Kung parallel-prefix adder.

    Sparse prefix tree: an up-sweep combining pairs at strides 1, 2, 4...
    then a down-sweep filling the intermediate carries.  Uses the same
    AOI/NAND cells as the Kogge-Stone generator.
    """
    if width < 2 or width & (width - 1):
        raise ConfigurationError("width must be a power of two >= 2")
    nl = Netlist(f"brent_kung_{width}")

    for i in range(width):
        nl.add_cell(f"p0_{i}", "xor2", [f"a{i}", f"b{i}"], f"p_{i}_{i}")
        nl.add_cell(f"gn_{i}", "nand2", [f"a{i}", f"b{i}"], f"gn0_{i}")
        nl.add_cell(f"g0_{i}", "inv", [f"gn0_{i}"], f"g_{i}_{i}")

    # Group nets are named g_<hi>_<lo> / p_<hi>_<lo> covering bits lo..hi.
    def combine(tag, hi, mid, lo):
        """(hi..mid+1) o (mid..lo) -> (hi..lo)."""
        g_hi, p_hi = f"g_{hi}_{mid + 1}", f"p_{hi}_{mid + 1}"
        g_lo, p_lo = f"g_{mid}_{lo}", f"p_{mid}_{lo}"
        nl.add_cell(f"aoi_{tag}", "aoi21", [p_hi, g_lo, g_hi],
                    f"gn_{hi}_{lo}")
        nl.add_cell(f"ginv_{tag}", "inv", [f"gn_{hi}_{lo}"], f"g_{hi}_{lo}")
        nl.add_cell(f"pnand_{tag}", "nand2", [p_hi, p_lo], f"pn_{hi}_{lo}")
        nl.add_cell(f"pinv_{tag}", "inv", [f"pn_{hi}_{lo}"], f"p_{hi}_{lo}")

    # Up-sweep: strides 2, 4, ..., width.
    stride = 2
    while stride <= width:
        for hi in range(stride - 1, width, stride):
            mid = hi - stride // 2
            combine(f"up{stride}_{hi}", hi, mid, hi - stride + 1)
        stride *= 2

    # Down-sweep: fill carries g_{hi}_0 for the remaining positions.
    stride = width // 2
    while stride >= 2:
        for hi in range(stride + stride // 2 - 1, width, stride):
            mid = hi - stride // 2
            combine(f"dn{stride}_{hi}", hi, mid, 0)
        stride //= 2

    # Sum bits: s_i = p_i xor carry_{i-1} (carry_{i} = g_{i}_0).
    nl.add_cell("s_0", "buf", ["p_0_0"], "s0")
    for i in range(1, width):
        nl.add_cell(f"s_{i}", "xor2", [f"p_{i}_{i}", f"g_{i - 1}_0"],
                    f"s{i}")
    nl.add_cell("cout_buf", "buf", [f"g_{width - 1}_0"], "cout")
    for i in range(width):
        nl.mark_output(f"s{i}")
    nl.mark_output("cout")
    return nl


def adder_comparison(tech, vdd: float = 0.5, width: int = 64,
                     n_samples: int = 500, seed: int | None = 0) -> dict:
    """Monte-Carlo variation of the three adder topologies at one Vdd.

    Returns ``{topology: {"depth", "cells", "mean", "three_sigma_over_mu"}}``
    — the cross-topology view of the paper's depth-averaging argument.
    """
    from repro.circuits.kogge_stone import kogge_stone_adder
    from repro.circuits.timing import StatisticalTimingEngine

    topologies = {
        "ripple-carry": ripple_carry_adder(width),
        "brent-kung": brent_kung_adder(width),
        "kogge-stone": kogge_stone_adder(width),
    }
    out = {}
    for name, netlist in topologies.items():
        engine = StatisticalTimingEngine(tech, seed=seed)
        result = engine.run(netlist, vdd, n_samples=n_samples)
        out[name] = {
            "depth": netlist.logic_depth(),
            "cells": netlist.n_cells,
            "mean": result.mean,
            "three_sigma_over_mu": result.three_sigma_over_mu,
        }
    return out
