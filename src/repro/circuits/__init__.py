"""Circuit-level substrate: gates, chains, netlists and statistical timing.

The paper's circuit-level study runs HSPICE Monte-Carlo on a single
inverter, a chain of 50 FO4 inverters, and (via Drego et al. [7]) a 64-bit
Kogge-Stone adder.  This package provides the same test structures on top
of the analytic device model: a logical-effort gate library
(:mod:`repro.circuits.gates`), chain/ring-oscillator builders
(:mod:`repro.circuits.chain`), a structural netlist
(:mod:`repro.circuits.netlist`), a parallel-prefix adder generator
(:mod:`repro.circuits.kogge_stone`) and a Monte-Carlo statistical static
timing engine (:mod:`repro.circuits.timing`).
"""

from repro.circuits.gates import Gate, GATE_LIBRARY, LOGIC_FUNCTIONS, get_gate
from repro.circuits.chain import GateChain, fo4_chain, RingOscillator
from repro.circuits.netlist import Netlist, Cell
from repro.circuits.kogge_stone import kogge_stone_adder
from repro.circuits.adders import (
    adder_comparison,
    brent_kung_adder,
    ripple_carry_adder,
)
from repro.circuits.timing import StatisticalTimingEngine, TimingResult

__all__ = [
    "Gate",
    "GATE_LIBRARY",
    "LOGIC_FUNCTIONS",
    "get_gate",
    "GateChain",
    "fo4_chain",
    "RingOscillator",
    "Netlist",
    "Cell",
    "kogge_stone_adder",
    "ripple_carry_adder",
    "brent_kung_adder",
    "adder_comparison",
    "StatisticalTimingEngine",
    "TimingResult",
]
