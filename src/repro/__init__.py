"""repro — reproduction of "Process Variation in Near-Threshold Wide SIMD
Architectures" (Seo et al., DAC 2012).

The library models delay variation of near-threshold wide-SIMD datapaths
across four technology nodes and evaluates the paper's three mitigation
techniques (structural duplication, voltage margining, frequency margining).

Quick start::

    from repro import VariationAnalyzer
    analyzer = VariationAnalyzer("90nm")
    drop = analyzer.performance_drop(0.5)        # Fig. 4 point
    from repro.sparing import solve_spares
    spares = solve_spares(analyzer, 0.55)        # Table 1 cell

See README.md for the architecture overview and
``python -m repro.experiments list`` for the paper-artifact regenerators.
"""

from repro._version import __version__
from repro.core import (
    ChipDelayEngine,
    DelayDistribution,
    MonteCarloEngine,
    MonteCarloKernel,
    ShiftProposal,
    TailEstimate,
    TailSampler,
    VariationAnalyzer,
    VariationSweep,
)
from repro.devices import (
    TechnologyNode,
    TransregionalModel,
    VariationModel,
    available_technologies,
    get_technology,
)
from repro.errors import ReproError
from repro.runtime import ParallelSampler, QuantileCache

__all__ = [
    "__version__",
    "VariationAnalyzer",
    "ChipDelayEngine",
    "MonteCarloEngine",
    "MonteCarloKernel",
    "DelayDistribution",
    "VariationSweep",
    "ShiftProposal",
    "TailEstimate",
    "TailSampler",
    "TechnologyNode",
    "TransregionalModel",
    "VariationModel",
    "available_technologies",
    "get_technology",
    "ReproError",
    "ParallelSampler",
    "QuantileCache",
]
