"""Operating-region classification and the energy minimum (Fig. 9).

The paper defines three regions by the supply/threshold relationship:
sub-threshold (``V < Vth``), near-threshold (``V ~ Vth``) and
super-threshold, and observes that the total-energy minimum sits in the
sub-threshold region while near-threshold offers the practical
energy/performance balance.
"""

from __future__ import annotations

import enum

from scipy.optimize import minimize_scalar

from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError

__all__ = [
    "OperatingRegion",
    "classify_region",
    "region_boundaries",
    "minimum_energy_voltage",
]


class OperatingRegion(enum.Enum):
    """The paper's three voltage regions."""

    SUB_THRESHOLD = "sub"
    NEAR_THRESHOLD = "near"
    SUPER_THRESHOLD = "super"


def classify_region(tech, vdd: float) -> OperatingRegion:
    """Classify ``vdd`` for a technology card."""
    return OperatingRegion(tech.mosfet.region(vdd))


def region_boundaries(tech) -> tuple:
    """(sub/near boundary, near/super boundary) in volts.

    Judged against the weaker (delay-dominating) branch, consistent with
    :meth:`~repro.devices.mosfet.TransregionalModel.region`: the sub/near
    boundary is the fixed point of ``V = Vth_weak_eff(V)`` (DIBL makes the
    effective threshold supply dependent); near/super at ``1.5 x``.
    """
    # Solve v = vth0 + split - dibl*v  ->  v = (vth0 + split) / (1 + dibl).
    mosfet = tech.mosfet
    vth = (mosfet.vth0 + mosfet.vth_split) / (1.0 + mosfet.dibl)
    return vth, 1.5 * vth


def minimum_energy_voltage(model: EnergyModel, v_lo: float = 0.15,
                           v_hi: float | None = None) -> float:
    """Supply voltage minimising total per-operation energy.

    The total energy is unimodal (quadratic switching falling, leakage
    energy rising exponentially below threshold); a bounded scalar
    minimisation finds the minimum.  The paper places it in the
    sub-threshold region.
    """
    if v_hi is None:
        v_hi = model.tech.nominal_vdd
    if not 0.0 < v_lo < v_hi:
        raise ConfigurationError("need 0 < v_lo < v_hi")
    result = minimize_scalar(lambda v: float(model.total_energy(v)),
                             bounds=(v_lo, v_hi), method="bounded",
                             options={"xatol": 1e-5})
    return float(result.x)
