"""Per-operation energy vs supply voltage (paper Appendix A, Fig. 9).

The textbook near-threshold energy decomposition:

* **switching energy** ``E_dyn = a C V^2`` — quadratic in supply;
* **leakage energy** ``E_leak = I_leak(V) * V * T_cycle(V) / ops`` — the
  leakage current integrates over the (exponentially growing) cycle time,
  so it *rises* as voltage falls below threshold.

Their sum has a minimum in the sub-threshold region; scaling from nominal
down to near-threshold buys ~10x energy for ~10x performance, and pushing
from the minimum back up to near-threshold buys 50-100x performance for
only ~2x energy (the paper's argument for near-threshold SIMD).

The model is normalised: energies are relative to the nominal-voltage
energy, delays to the nominal FO4.  ``leakage_fraction_nominal`` (the
share of leakage in per-operation energy at nominal voltage) is the
single tuning knob.  The default (0.5 %) is chosen jointly with the
calibrated delay curve so the energy minimum falls at the sub/near
threshold boundary, as in the paper's Fig. 9: the calibrated 90 nm GP
delay curve is steep below threshold (that is what its Fig. 1 variation
data demands), so even a sub-percent nominal leakage share produces the
characteristic leakage-energy blow-up in sub-threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["EnergyPoint", "EnergyModel"]


@dataclass(frozen=True)
class EnergyPoint:
    """Energy/delay at one supply voltage, normalised to nominal."""

    vdd: float
    total_energy: float
    switching_energy: float
    leakage_energy: float
    delay: float
    region: str

    @property
    def energy_delay_product(self) -> float:
        return self.total_energy * self.delay


class EnergyModel:
    """Normalised switching + leakage energy model for one technology.

    Parameters
    ----------
    tech:
        Technology card (provides delay(V) and leakage(V) shapes).
    leakage_fraction_nominal:
        Fraction of total per-operation energy that is leakage at the
        nominal supply.
    """

    def __init__(self, tech, leakage_fraction_nominal: float = 0.005) -> None:
        if not 0.0 < leakage_fraction_nominal < 1.0:
            raise ConfigurationError(
                "leakage_fraction_nominal must be in (0, 1)")
        self.tech = tech
        self.leakage_fraction_nominal = float(leakage_fraction_nominal)
        vnom = tech.nominal_vdd
        self._e_dyn_nom = 1.0 - leakage_fraction_nominal
        self._leak_nom = (float(tech.mosfet.subthreshold_leakage(vnom))
                          * vnom * tech.fo4_unit(vnom))

    # -- components ------------------------------------------------------------

    def relative_delay(self, vdd):
        """FO4 delay normalised to the nominal-voltage FO4."""
        vdd = np.asarray(vdd, dtype=float)
        return (self.tech.fo4_delay(vdd)
                / self.tech.fo4_unit(self.tech.nominal_vdd))

    def switching_energy(self, vdd):
        """Normalised ``a C V^2`` term."""
        vdd = np.asarray(vdd, dtype=float)
        return self._e_dyn_nom * (vdd / self.tech.nominal_vdd) ** 2

    def leakage_energy(self, vdd):
        """Normalised ``I_leak * V * T`` term.

        Uses the card's sub-threshold leakage shape (DIBL included) and its
        calibrated delay curve, so the exponential delay growth below
        threshold drives the characteristic leakage-energy upturn.
        """
        vdd = np.asarray(vdd, dtype=float)
        leak = (self.tech.mosfet.subthreshold_leakage(vdd) * vdd
                * self.tech.fo4_delay(vdd))
        return self.leakage_fraction_nominal * leak / self._leak_nom

    def total_energy(self, vdd):
        """Normalised total per-operation energy."""
        return self.switching_energy(vdd) + self.leakage_energy(vdd)

    # -- sweeps ------------------------------------------------------------------

    def evaluate(self, vdd: float) -> EnergyPoint:
        """Full energy/delay breakdown at one voltage."""
        vdd = float(vdd)
        return EnergyPoint(
            vdd=vdd,
            total_energy=float(self.total_energy(vdd)),
            switching_energy=float(self.switching_energy(vdd)),
            leakage_energy=float(self.leakage_energy(vdd)),
            delay=float(self.relative_delay(vdd)),
            region=self.tech.mosfet.region(vdd),
        )

    def sweep(self, voltages) -> list:
        """Evaluate a sequence of voltages (Fig. 9 curve)."""
        return [self.evaluate(v) for v in np.asarray(voltages, dtype=float)]

    def energy_savings_at(self, vdd: float) -> float:
        """``E(nominal) / E(vdd)`` — the paper's "order of 10x" claim."""
        return 1.0 / float(self.total_energy(vdd))

    def performance_cost_at(self, vdd: float) -> float:
        """``delay(vdd) / delay(nominal)`` — the matching ~10x slowdown."""
        return float(self.relative_delay(vdd))
