"""Energy model for the three operating regions (paper Section 2 / Fig. 9).

:mod:`repro.energy.model` computes per-operation switching + leakage
energy across the supply range; :mod:`repro.energy.regions` classifies
the sub/near/super-threshold regions and locates the energy minimum.
"""

from repro.energy.model import EnergyModel, EnergyPoint
from repro.energy.regions import (
    OperatingRegion,
    classify_region,
    minimum_energy_voltage,
    region_boundaries,
)

__all__ = [
    "EnergyModel",
    "EnergyPoint",
    "OperatingRegion",
    "classify_region",
    "minimum_energy_voltage",
    "region_boundaries",
]
