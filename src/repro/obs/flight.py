"""Flight recorder: a bounded ring of structured hot-path events.

Long-running servers need an answer to "what just happened?" that does
not require re-running with tracing on.  :class:`FlightRecorder` keeps
the last ``capacity`` structured events (admit, coalesce, flush, solve,
retry, deadline_miss, fault, backpressure_reject, ...) in memory at a
fixed cost: recording is a lock plus a deque append, old events fall off
the front, and a drop counter records how much history was lost.

Snapshots are dumped by the server via ``GET /v1/debug/flight``, printed
on ``SIGUSR2``, and attached to the shutdown manifest.  Event payloads
must be JSON-serialisable and deterministic apart from the ``t_s``
timestamp and ``wall_s`` durations, which
:func:`repro.obs.manifest.strip_timing` removes — so two identical
request sequences produce byte-identical stripped snapshots, which is
what the chaos regression tests assert.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["FlightRecorder", "NOOP_FLIGHT", "FLIGHT_SCHEMA", "EVENT_KINDS"]

#: Event kinds emitted on the serve hot path.
EVENT_KINDS = ("admit", "coalesce", "flush", "solve", "retry",
               "deadline_miss", "fault", "backpressure_reject",
               "shed", "drain", "net_fault")

#: Mini JSON-schema (see :func:`repro.obs.manifest.validate_schema`) for
#: a flight-recorder snapshot.
FLIGHT_SCHEMA = {
    "type": "object",
    "required": ["kind", "capacity", "total", "dropped", "events"],
    "properties": {
        "kind": {"type": "string"},
        "capacity": {"type": "number"},
        "total": {"type": "number"},
        "dropped": {"type": "number"},
        "events": {
            "type": "array",
            "items": {"type": "object", "required": ["seq", "kind"]},
        },
    },
}


class FlightRecorder:
    """Bounded ring buffer of structured events with a drop counter.

    ``clock`` (seconds, monotonic by default) stamps each event's
    ``t_s`` field; inject a fake for deterministic tests.  Thread-safe:
    the event loop, the dispatcher's solver thread and signal handlers
    all record into the same ring.
    """

    enabled = True

    def __init__(self, capacity: int = 512, *,
                 clock=time.monotonic) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque = deque(maxlen=self.capacity)
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()

    def record(self, kind: str, **fields) -> None:
        """Append one event; evicts the oldest when the ring is full."""
        t = self._clock()
        with self._lock:
            event = {"seq": self._seq, "t_s": t, "kind": kind}
            event.update(fields)
            self._seq += 1
            self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total(self) -> int:
        """Events ever recorded (retained + dropped)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring."""
        return self._seq - len(self._events)

    def snapshot(self) -> dict:
        """Serialisable dump of the ring, oldest event first."""
        with self._lock:
            return {
                "kind": "repro-flight-recorder",
                "capacity": self.capacity,
                "total": self._seq,
                "dropped": self._seq - len(self._events),
                "events": [dict(e) for e in self._events],
            }


class _NoopFlightRecorder(FlightRecorder):
    """Disabled recorder: records nothing, snapshots empty."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)
        self.capacity = 0

    def record(self, kind: str, **fields) -> None:
        pass


#: Shared disabled recorder (``flight_capacity=0`` in the serve config).
NOOP_FLIGHT = _NoopFlightRecorder()
