"""Structured observability: span tracing, metrics, run manifests.

``repro.obs`` subsumes and extends the PR-1 :mod:`repro.runtime.profile`
wall-time tables with three machine-readable instruments:

* **Span tracing** (:class:`Tracer`) — hierarchical ``span(name, **attrs)``
  context managers that nest, carry attributes (node, vdd, shard id, ...)
  and export to Chrome trace-event JSON viewable in Perfetto
  (``python -m repro.experiments fig4 --trace trace.json``).  Spans started
  inside :class:`~repro.runtime.parallel.ParallelSampler` pool workers are
  serialised back with the shard results and folded into the parent trace.
* **Metrics registry** (:class:`MetricsRegistry`) — counters, gauges and
  fixed-bucket histograms with a
  ``metrics.counter("quantile_cache.hits")``-style API, instrumented at the
  runtime's hot seams: quantile-cache hits/misses, kernel-LRU economics,
  batch-solver secant-vs-Chandrupatla fallbacks, per-shard sample counts.
* **Run manifests** (:func:`build_manifest`) — a JSON provenance record of
  one experiment run (root seed, card fingerprints, package/numpy versions,
  cache state before/after, per-stage stats, metrics snapshot), written by
  ``--metrics FILE``.

Everything is **off by default**: the module-level accessors
(:func:`counter`, :func:`span`, ...) resolve through a
:class:`contextvars.ContextVar` that defaults to no-op singletons, so with
observability disabled an instrumentation site costs one context-variable
lookup and a no-op method call (guarded by
``benchmarks/bench_obs_overhead.py``).

The PR-1 :class:`~repro.runtime.profile.Profiler` remains the aggregate
wall-time view and is re-exported here; ``--profile`` renders both the
stage table and the metrics counters.
"""

from __future__ import annotations

from repro.obs.api import (
    NOOP_OBS,
    Observability,
    activate_obs,
    build_obs,
    counter,
    current_obs,
    gauge,
    histogram,
    span,
)
from repro.obs.flight import FLIGHT_SCHEMA, NOOP_FLIGHT, FlightRecorder
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    build_manifest,
    cache_file_state,
    strip_timing,
    validate_schema,
    write_manifest,
)
from repro.obs.metrics import (
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedCounter,
    WindowedHistogram,
)
from repro.obs.openmetrics import (
    OPENMETRICS_CONTENT_TYPE,
    check_openmetrics,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.trace import NOOP_TRACER, Tracer, write_chrome_trace

_PROFILE_EXPORTS = ("Profiler", "StageStats")


def __getattr__(name: str):
    # Profiler/StageStats live in repro.runtime.profile, whose package
    # pulls in the core solver; resolve lazily so instrumenting
    # repro.core modules with repro.obs never forms an import cycle.
    if name in _PROFILE_EXPORTS:
        from repro.runtime import profile
        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Observability",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedHistogram",
    "WindowedCounter",
    "FlightRecorder",
    "Profiler",
    "StageStats",
    "activate_obs",
    "build_obs",
    "current_obs",
    "counter",
    "gauge",
    "histogram",
    "span",
    "build_manifest",
    "write_manifest",
    "write_chrome_trace",
    "cache_file_state",
    "strip_timing",
    "validate_schema",
    "render_openmetrics",
    "parse_openmetrics",
    "check_openmetrics",
    "OPENMETRICS_CONTENT_TYPE",
    "MANIFEST_SCHEMA",
    "TRACE_SCHEMA",
    "FLIGHT_SCHEMA",
    "NOOP_OBS",
    "NOOP_METRICS",
    "NOOP_TRACER",
    "NOOP_FLIGHT",
]
