"""OpenMetrics / Prometheus text exposition for a metrics snapshot.

:func:`render_openmetrics` turns a :meth:`MetricsRegistry.as_dict`
snapshot into the OpenMetrics text format scraped by Prometheus:
counters become ``<name>_total`` samples, gauges plain samples, and
histograms the standard cumulative ``_bucket{le="..."}`` series — always
ending in an explicit ``le="+Inf"`` bucket equal to ``_count``, so
overflow observations are first-class rather than silently folded into
the last finite bin.  Instrument names are sanitised to the metric-name
charset (``serve.latency_ms`` → ``serve_latency_ms``).

:func:`parse_openmetrics` is the matching mini-parser used by the test
suite and ``scripts/validate_obs.py`` to check scrapes without a real
Prometheus: it groups samples per family and enforces the structural
invariants (``# EOF`` terminator, cumulative non-decreasing buckets,
``+Inf`` == count, counter samples carrying the ``_total`` suffix).
"""

from __future__ import annotations

import re

__all__ = ["render_openmetrics", "parse_openmetrics", "check_openmetrics",
           "OPENMETRICS_CONTENT_TYPE"]

#: Content-Type announced by the ``GET /metrics`` endpoint.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL_RE = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>[^"]*)"')


def sanitize_name(name: str) -> str:
    """Map an instrument name onto the OpenMetrics name charset."""
    out = _NAME_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value) -> str:
    """Render a sample value / bucket bound without trailing noise."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_openmetrics(snapshot: dict, *, extra_gauges=None) -> str:
    """Render an ``as_dict`` metrics snapshot as OpenMetrics text.

    ``extra_gauges`` is an optional ``{name: value}`` mapping appended
    to the gauge families (for values computed at scrape time).
    """
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        om = sanitize_name(name)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {_fmt(value)}")
    gauges = dict(snapshot.get("gauges", {}))
    if extra_gauges:
        gauges.update(extra_gauges)
    for name, value in sorted(gauges.items()):
        om = sanitize_name(name)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_fmt(value)}")
    for name, rec in sorted(snapshot.get("histograms", {}).items()):
        om = sanitize_name(name)
        lines.append(f"# TYPE {om} histogram")
        cumulative = 0
        for bound, n in zip(rec["buckets"], rec["counts"]):
            cumulative += n
            lines.append(f'{om}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{om}_bucket{{le="+Inf"}} {rec["count"]}')
        lines.append(f"{om}_sum {_fmt(rec['sum'])}")
        lines.append(f"{om}_count {rec['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict:
    """Parse OpenMetrics text into ``{family: {"type", "samples"}}``.

    ``samples`` is a list of ``(name, labels_dict, value)`` tuples in
    exposition order.  Samples are attributed to the most specific
    declared family whose name prefixes theirs (so ``x_total``,
    ``x_bucket``, ``x_sum`` and ``x_count`` group under family ``x``).
    Raises :class:`ValueError` on malformed lines or a missing ``# EOF``.
    """
    families: dict = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            families[parts[2]] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = m.group("name")
        labels = {lm.group("k"): lm.group("v")
                  for lm in _LABEL_RE.finditer(m.group("labels") or "")}
        value = float(m.group("value"))
        family = None
        for fam in families:
            if name == fam or name.startswith(fam + "_"):
                if family is None or len(fam) > len(family):
                    family = fam
        if family is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no family")
        families[family]["samples"].append((name, labels, value))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families


def check_openmetrics(text: str) -> list:
    """Validate an exposition; returns a list of problem strings."""
    problems = []
    try:
        families = parse_openmetrics(text)
    except ValueError as exc:
        return [str(exc)]
    for fam, rec in families.items():
        kind = rec["type"]
        samples = rec["samples"]
        if not samples:
            problems.append(f"{fam}: family declared but no samples")
            continue
        if kind == "counter":
            for name, _, value in samples:
                if not name.endswith("_total"):
                    problems.append(f"{fam}: counter sample {name!r} "
                                    "missing _total suffix")
                if value < 0:
                    problems.append(f"{fam}: negative counter {value}")
        elif kind == "histogram":
            buckets = [(labels.get("le"), value)
                       for name, labels, value in samples
                       if name.endswith("_bucket")]
            counts = [value for name, _, value in samples
                      if name.endswith("_count")]
            if not buckets:
                problems.append(f"{fam}: histogram without buckets")
                continue
            if buckets[-1][0] != "+Inf":
                problems.append(f"{fam}: last bucket is {buckets[-1][0]!r}, "
                                "expected +Inf")
            values = [v for _, v in buckets]
            if any(b > a for b, a in zip(values, values[1:])):
                problems.append(f"{fam}: bucket counts not cumulative")
            if counts and buckets and buckets[-1][1] != counts[0]:
                problems.append(f"{fam}: +Inf bucket {buckets[-1][1]} != "
                                f"count {counts[0]}")
    return problems
