"""Hierarchical span tracing with Chrome trace-event export.

:class:`Tracer` collects *complete* trace events (``ph: "X"``): each
:meth:`Tracer.span` block becomes one event with a wall-clock timestamp,
a monotonic duration, the process/thread ids and arbitrary attributes.
Spans nest — the tracer keeps a per-context stack (a
:class:`contextvars.ContextVar`, so concurrent threads *and* concurrent
asyncio tasks each see their own ancestry), and a span opened inside
another records its parent's id.

Distributed traces: a span may be opened under an explicit ``ctx=(
trace_id, parent_span_id)`` handed over a process or network boundary —
the span and everything nested inside it (including
:meth:`Observability.worker_context` payloads built there) then carry
the *remote* trace id instead of this tracer's own.  This is how one
serving request stays a single connected trace from the client's minted
id through the server, the batching dispatcher and the pool workers.
Fan-in points (a batch solve serving many coalesced requests) record
``links`` — the list of joined request spans — via :meth:`Tracer.span`'s
``links`` argument or :meth:`Tracer.add_span`.

Cross-process traces: a parent tracer's ``(trace_id, current span id)``
travel to a :class:`~concurrent.futures.ProcessPoolExecutor` worker inside
its task payload; the worker runs a fresh ``Tracer(trace_id=...,
parent=...)``, and its finished events come back with the shard result for
:meth:`Tracer.absorb` — worker events keep their own ``pid``, so Perfetto
shows one track per worker process.

Timestamps use ``time.time()`` (shared across processes) in microseconds,
the Chrome trace-event unit; durations use ``time.perf_counter()``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar

__all__ = ["Tracer", "NOOP_TRACER", "write_chrome_trace"]

_NULL_CM = nullcontext()

#: Per-process tracer sequence number, part of every span id.  Two live
#: tracers in one process (a serve client and its in-process test server,
#: two servers, ...) must never mint colliding span ids — a collision
#: corrupts parent chains when their events land in the same trace.
_TRACER_SEQ = itertools.count()


class Tracer:
    """Collects nested spans as Chrome trace-event dicts.

    Parameters
    ----------
    trace_id:
        Identifier shared by every span of one run; generated when absent,
        inherited when the tracer continues a parent process's trace.
    parent:
        Span id adopted as the parent of this tracer's top-level spans
        (set in pool workers to the dispatching span's id).
    """

    enabled = True

    def __init__(self, trace_id: str | None = None,
                 parent: str | None = None) -> None:
        if trace_id is None:
            trace_id = f"{os.getpid():x}-{time.time_ns():x}"
        self.trace_id = str(trace_id)
        self.base_parent = parent
        self._events: list = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._id_prefix = f"{os.getpid():x}.{next(_TRACER_SEQ):x}"
        # Ancestry frames (span_id, trace_id), innermost last.  A
        # ContextVar — not an instance list — so spans opened from the
        # dispatcher's solver thread, pool workers or concurrent asyncio
        # request tasks never corrupt each other's parentage.
        self._frames: ContextVar = ContextVar(
            f"repro_trace_frames_{id(self):x}", default=())

    # -- ids and ancestry ----------------------------------------------------

    def new_span_id(self) -> str:
        """Allocate a span id (for spans recorded via :meth:`add_span`)."""
        return f"{self._id_prefix}.{next(self._ids)}"

    def current_span(self) -> str | None:
        """Id of the innermost open span (the would-be parent)."""
        frames = self._frames.get()
        return frames[-1][0] if frames else self.base_parent

    def current_trace_id(self) -> str:
        """Trace id governing the current context.

        The tracer's own id unless an open span adopted a remote context
        (``span(..., ctx=...)``), in which case the remote trace id is
        inherited by everything nested under it.
        """
        frames = self._frames.get()
        return frames[-1][1] if frames else self.trace_id

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, ctx: tuple | None = None,
             links=None, **attrs):
        """Record the block as one complete event named ``name``.

        ``attrs`` become the event's ``args`` and must be
        JSON-serialisable (strings, numbers, booleans).  ``ctx`` is an
        optional ``(trace_id, parent_span_id)`` pair from a remote
        caller (request header, batch dispatch): the span joins *that*
        trace instead of continuing the local ancestry.  ``links`` is an
        optional list of ``{"trace_id", "span_id"}`` dicts naming spans
        this one fans in from.
        """
        span_id = self.new_span_id()
        frames = self._frames.get()
        if ctx is not None:
            trace_id = str(ctx[0]) if ctx[0] else self.trace_id
            parent = ctx[1]
        else:
            trace_id = frames[-1][1] if frames else self.trace_id
            parent = frames[-1][0] if frames else self.base_parent
        token = self._frames.set(frames + ((span_id, trace_id),))
        ts = time.time() * 1e6
        start = time.perf_counter()
        try:
            yield
        finally:
            dur = time.perf_counter() - start
            self._frames.reset(token)
            self._append(name, ts, dur * 1e6, span_id, trace_id,
                         parent, links, attrs)

    def add_span(self, name: str, *, ts: float | None = None,
                 dur_s: float = 0.0, ctx: tuple | None = None,
                 links=None, span_id: str | None = None, **attrs) -> str:
        """Record a complete span without touching the ancestry stack.

        For spans whose lifetime straddles awaits or threads (a batch
        solve measured on the event loop): allocate an id up front with
        :meth:`new_span_id` so children can parent under it, then record
        the finished event here.  ``ts`` is the wall-clock start in
        microseconds (defaults to now), ``dur_s`` the duration in
        seconds.  Returns the span id.
        """
        if span_id is None:
            span_id = self.new_span_id()
        trace_id = (str(ctx[0]) if ctx is not None and ctx[0]
                    else self.trace_id)
        parent = ctx[1] if ctx is not None else None
        self._append(name, ts if ts is not None else time.time() * 1e6,
                     dur_s * 1e6, span_id, trace_id, parent, links, attrs)
        return span_id

    def _append(self, name, ts, dur_us, span_id, trace_id, parent,
                links, attrs) -> None:
        args = {"span_id": span_id, "trace_id": trace_id}
        if parent is not None:
            args["parent_id"] = parent
        if links:
            args["links"] = list(links)
        args.update(attrs)
        event = {
            "name": name, "ph": "X", "ts": ts, "dur": dur_us,
            "pid": os.getpid(), "tid": threading.get_ident() & 0x7FFFFFFF,
            "cat": "repro", "args": args,
        }
        with self._lock:
            self._events.append(event)

    # -- snapshots -----------------------------------------------------------

    def events(self) -> list:
        """The finished events (serialisable; worker hand-back payload)."""
        with self._lock:
            return list(self._events)

    def absorb(self, events) -> None:
        """Fold a batch of events (e.g. from a pool worker) into this trace."""
        with self._lock:
            self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def chrome_trace(self) -> dict:
        """The full trace as a Chrome trace-event JSON object.

        Loads in Perfetto (https://ui.perfetto.dev) and legacy
        ``chrome://tracing``: a ``traceEvents`` array of complete events
        plus process-name metadata for every pid seen.
        """
        events = self.events()
        pids = sorted({e["pid"] for e in events})
        parent_pid = os.getpid()
        for pid in pids:
            role = "repro" if pid == parent_pid else "repro worker"
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{role} (pid {pid})"},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id},
        }


class _NoopTracer(Tracer):
    """Disabled tracer: spans are free, nothing is recorded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_id="noop")

    def span(self, name: str, *, ctx=None, links=None, **attrs):
        return _NULL_CM

    def add_span(self, name: str, **kwargs) -> str:
        return "noop"

    def absorb(self, events) -> None:
        pass


#: Shared disabled tracer — the default when no observability is active.
NOOP_TRACER = _NoopTracer()


def write_chrome_trace(path: str, tracer: Tracer) -> None:
    """Write ``tracer``'s trace as Chrome trace-event JSON at ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(tracer.chrome_trace(), fh)
        fh.write("\n")
