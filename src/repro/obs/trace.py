"""Hierarchical span tracing with Chrome trace-event export.

:class:`Tracer` collects *complete* trace events (``ph: "X"``): each
:meth:`Tracer.span` block becomes one event with a wall-clock timestamp,
a monotonic duration, the process/thread ids and arbitrary attributes.
Spans nest — the tracer keeps a per-tracer stack, so a span opened inside
another records its parent's id and Perfetto renders the hierarchy from
the timing containment.

Cross-process traces: a parent tracer's ``(trace_id, current span id)``
travel to a :class:`~concurrent.futures.ProcessPoolExecutor` worker inside
its task payload; the worker runs a fresh ``Tracer(trace_id=...,
parent=...)``, and its finished events come back with the shard result for
:meth:`Tracer.absorb` — worker events keep their own ``pid``, so Perfetto
shows one track per worker process.

Timestamps use ``time.time()`` (shared across processes) in microseconds,
the Chrome trace-event unit; durations use ``time.perf_counter()``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext

__all__ = ["Tracer", "NOOP_TRACER", "write_chrome_trace"]

_NULL_CM = nullcontext()


class Tracer:
    """Collects nested spans as Chrome trace-event dicts.

    Parameters
    ----------
    trace_id:
        Identifier shared by every span of one run; generated when absent,
        inherited when the tracer continues a parent process's trace.
    parent:
        Span id adopted as the parent of this tracer's top-level spans
        (set in pool workers to the dispatching span's id).
    """

    enabled = True

    def __init__(self, trace_id: str | None = None,
                 parent: str | None = None) -> None:
        if trace_id is None:
            trace_id = f"{os.getpid():x}-{time.time_ns():x}"
        self.trace_id = str(trace_id)
        self.base_parent = parent
        self._events: list = []
        self._stack: list = []
        self._next = 0

    # -- spans ---------------------------------------------------------------

    def current_span(self) -> str | None:
        """Id of the innermost open span (the would-be parent)."""
        return self._stack[-1] if self._stack else self.base_parent

    @contextmanager
    def span(self, name: str, **attrs):
        """Record the block as one complete event named ``name``.

        ``attrs`` become the event's ``args`` and must be
        JSON-serialisable (strings, numbers, booleans).
        """
        span_id = f"{os.getpid():x}.{self._next}"
        self._next += 1
        parent = self.current_span()
        self._stack.append(span_id)
        ts = time.time() * 1e6
        start = time.perf_counter()
        try:
            yield
        finally:
            dur = time.perf_counter() - start
            self._stack.pop()
            args = {"span_id": span_id, "trace_id": self.trace_id}
            if parent is not None:
                args["parent_id"] = parent
            args.update(attrs)
            self._events.append({
                "name": name, "ph": "X", "ts": ts, "dur": dur * 1e6,
                "pid": os.getpid(), "tid": threading.get_ident() & 0x7FFFFFFF,
                "cat": "repro", "args": args,
            })

    # -- snapshots -----------------------------------------------------------

    def events(self) -> list:
        """The finished events (serialisable; worker hand-back payload)."""
        return list(self._events)

    def absorb(self, events) -> None:
        """Fold a batch of events (e.g. from a pool worker) into this trace."""
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def chrome_trace(self) -> dict:
        """The full trace as a Chrome trace-event JSON object.

        Loads in Perfetto (https://ui.perfetto.dev) and legacy
        ``chrome://tracing``: a ``traceEvents`` array of complete events
        plus process-name metadata for every pid seen.
        """
        events = list(self._events)
        pids = sorted({e["pid"] for e in events})
        parent_pid = os.getpid()
        for pid in pids:
            role = "repro" if pid == parent_pid else "repro worker"
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{role} (pid {pid})"},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id},
        }


class _NoopTracer(Tracer):
    """Disabled tracer: spans are free, nothing is recorded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_id="noop")

    def span(self, name: str, **attrs):
        return _NULL_CM

    def absorb(self, events) -> None:
        pass


#: Shared disabled tracer — the default when no observability is active.
NOOP_TRACER = _NoopTracer()


def write_chrome_trace(path: str, tracer: Tracer) -> None:
    """Write ``tracer``'s trace as Chrome trace-event JSON at ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(tracer.chrome_trace(), fh)
        fh.write("\n")
