"""Counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out named instruments on demand::

    metrics.counter("quantile_cache.hits").inc()
    metrics.gauge("sampler.worker_utilization").set(0.83)
    metrics.histogram("sampler.shard_samples").observe(256)

Instruments are memoised by name, so a hot call site pays one dict lookup
plus one attribute bump.  Registries serialise with :meth:`as_dict` and
fold worker snapshots back in with :meth:`merge` (counters and histograms
add; gauges take the incoming value) — the same cross-process contract as
:meth:`repro.runtime.profile.Profiler.merge`.

The disabled path is a parallel no-op hierarchy: :data:`NOOP_METRICS`
returns shared do-nothing instruments without touching any dict, so
instrumentation guarded by it is effectively free.
"""

from __future__ import annotations

import bisect

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NOOP_METRICS", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (counts-style quantities).
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are the inclusive upper bounds of each bin; one implicit
    overflow bin catches everything above the last bound.  Bounds are
    fixed at creation so snapshots from different processes merge by
    plain elementwise addition.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` a fraction in [0, 1]).

        Linear interpolation inside the winning bucket, taking the
        previous bound (or 0) as its lower edge; observations in the
        overflow bin report the last finite bound.  Returns 0.0 with no
        observations.  The estimate is as coarse as the bucket grid —
        fine for serving dashboards, not for microbenchmarks.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {p}")
        if not self.count:
            return 0.0
        rank = p * self.count
        running = 0
        for i, upper in enumerate(self.buckets):
            prev = running
            running += self.counts[i]
            if running >= rank and self.counts[i]:
                lower = self.buckets[i - 1] if i else 0.0
                frac = (rank - prev) / self.counts[i]
                return lower + frac * (upper - lower)
        return self.buckets[-1] if self.buckets else 0.0


class _Noop:
    """Do-nothing stand-in for every instrument type."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_INSTRUMENT = _Noop()


class MetricsRegistry:
    """Named instrument registry with snapshot/merge support."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- snapshots -----------------------------------------------------------

    def as_dict(self) -> dict:
        """Serialisable snapshot (for manifests and worker hand-back)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"buckets": list(h.buckets), "counts": list(h.counts),
                    "sum": h.total, "count": h.count}
                for n, h in sorted(self._histograms.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold an :meth:`as_dict` snapshot (e.g. from a pool worker) in.

        Counters and histograms accumulate; gauges adopt the incoming
        value.  Histograms with mismatched bucket bounds are skipped
        rather than corrupted (bounds are part of the instrument's
        identity).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, rec in snapshot.get("histograms", {}).items():
            h = self.histogram(name, rec.get("buckets", DEFAULT_BUCKETS))
            if list(h.buckets) != [float(b) for b in rec["buckets"]]:
                continue
            for i, n in enumerate(rec["counts"]):
                h.counts[i] += int(n)
            h.total += float(rec["sum"])
            h.count += int(rec["count"])

    def render(self) -> str:
        """Aligned text report of every instrument (``--profile`` output)."""
        lines = ["metrics", "-------"]
        rows = [(name, f"{c.value}") for name, c in
                sorted(self._counters.items())]
        rows += [(name, f"{g.value:g}") for name, g in
                 sorted(self._gauges.items())]
        rows += [(name, f"n={h.count} mean={h.mean:g}") for name, h in
                 sorted(self._histograms.items())]
        if not rows:
            return "\n".join(lines + ["  (no metrics recorded)"])
        width = max(len(name) for name, _ in rows)
        lines += [f"  {name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)


class _NoopMetrics(MetricsRegistry):
    """Registry whose instruments are shared do-nothing singletons."""

    enabled = False

    def counter(self, name: str):
        return _NOOP_INSTRUMENT

    def gauge(self, name: str):
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS):
        return _NOOP_INSTRUMENT


#: Shared disabled registry — the default when no observability is active.
NOOP_METRICS = _NoopMetrics()
