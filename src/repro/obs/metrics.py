"""Counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out named instruments on demand::

    metrics.counter("quantile_cache.hits").inc()
    metrics.gauge("sampler.worker_utilization").set(0.83)
    metrics.histogram("sampler.shard_samples").observe(256)

Instruments are memoised by name, so a hot call site pays one dict lookup
plus one locked attribute bump.  Every instrument is thread-safe: the
threaded kernel backend and the serve dispatcher's solver thread mutate
counters concurrently with the event loop, so updates take a per-
instrument lock (uncontended in the common case).  Registries serialise
with :meth:`as_dict` and fold worker snapshots back in with :meth:`merge`
(counters and histograms add; gauges take the incoming value) — the same
cross-process contract as :meth:`repro.runtime.profile.Profiler.merge`.

For live serving dashboards there are additionally *windowed*
instruments — :class:`WindowedHistogram` and :class:`WindowedCounter` —
rings of sub-windows that forget observations older than the window, so
a latency p99 or QPS reading reflects the last ~60 s rather than process
lifetime.  They are standalone objects (owned by the server, not part of
registry snapshots) because their contents are wall-clock dependent and
would break manifest determinism.

The disabled path is a parallel no-op hierarchy: :data:`NOOP_METRICS`
returns shared do-nothing instruments without touching any dict, so
instrumentation guarded by it is effectively free.
"""

from __future__ import annotations

import bisect
import threading
import time

__all__ = ["Counter", "Gauge", "Histogram", "WindowedHistogram",
           "WindowedCounter", "MetricsRegistry", "NOOP_METRICS",
           "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (counts-style quantities).
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


def _percentile_from_counts(buckets, counts, count, vmax, p):
    """Shared percentile estimator over a bucket-counts array.

    ``counts`` has ``len(buckets) + 1`` entries, the last being the
    overflow bin; ``vmax`` is the largest value observed, used as the
    overflow bin's upper edge so tail percentiles interpolate instead of
    clamping to the last finite bound.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {p}")
    if not count:
        return 0.0
    rank = p * count
    running = 0
    for i, upper in enumerate(buckets):
        prev = running
        running += counts[i]
        if running >= rank and counts[i]:
            lower = buckets[i - 1] if i else 0.0
            frac = (rank - prev) / counts[i]
            return lower + frac * (upper - lower)
    # Rank falls in the overflow bin: interpolate between the last
    # finite bound and the observed maximum.
    lower = buckets[-1] if buckets else 0.0
    n_over = counts[len(buckets)]
    if not n_over:
        return lower
    hi = max(float(vmax), lower)
    prev = count - n_over
    frac = min(1.0, max(0.0, (rank - prev) / n_over))
    return lower + frac * (hi - lower)


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are the inclusive upper bounds of each bin; one implicit
    overflow bin catches everything above the last bound.  Bounds are
    fixed at creation so snapshots from different processes merge by
    plain elementwise addition.  The largest observed value is tracked so
    tail percentiles stay meaningful when observations overflow the grid.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "vmax",
                 "_lock")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self.vmax = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1
            if value > self.vmax:
                self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations above the last finite bucket bound."""
        return self.counts[-1]

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` a fraction in [0, 1]).

        Linear interpolation inside the winning bucket, taking the
        previous bound (or 0) as its lower edge; the overflow bin
        interpolates up to the largest value observed.  Returns 0.0 with
        no observations.  The estimate is as coarse as the bucket grid —
        fine for serving dashboards, not for microbenchmarks.
        """
        with self._lock:
            return _percentile_from_counts(self.buckets, self.counts,
                                           self.count, self.vmax, p)


class WindowedHistogram:
    """Rolling-window histogram: a ring of fixed-bucket sub-windows.

    Observations land in the sub-window covering the current wall-clock
    slice; snapshots aggregate only the sub-windows inside the last
    ``window_s`` seconds, so percentiles, counts and rates reflect
    *recent* behaviour and old traffic ages out within one sub-window's
    granularity (``window_s / sub_windows``).  Thread-safe.  ``clock`` is
    injectable for deterministic tests.
    """

    __slots__ = ("name", "buckets", "window_s", "sub_windows", "_sub_s",
                 "_clock", "_counts", "_sums", "_ns", "_maxes", "_epoch",
                 "_lock")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS, *,
                 window_s: float = 60.0, sub_windows: int = 12,
                 clock=time.monotonic) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if sub_windows < 1:
            raise ValueError(f"sub_windows must be >= 1, got {sub_windows}")
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.window_s = float(window_s)
        self.sub_windows = int(sub_windows)
        self._sub_s = self.window_s / self.sub_windows
        self._clock = clock
        nbins = len(self.buckets) + 1
        self._counts = [[0] * nbins for _ in range(self.sub_windows)]
        self._sums = [0.0] * self.sub_windows
        self._ns = [0] * self.sub_windows
        self._maxes = [0.0] * self.sub_windows
        self._epoch = None
        self._lock = threading.Lock()

    def _advance(self) -> int:
        """Clear sub-windows the clock has moved past; return active slot."""
        idx = int(self._clock() / self._sub_s)
        if self._epoch is None:
            self._epoch = idx
        step = idx - self._epoch
        if step > 0:
            nbins = len(self.buckets) + 1
            for k in range(1, min(step, self.sub_windows) + 1):
                slot = (self._epoch + k) % self.sub_windows
                self._counts[slot] = [0] * nbins
                self._sums[slot] = 0.0
                self._ns[slot] = 0
                self._maxes[slot] = 0.0
            self._epoch = idx
        return self._epoch % self.sub_windows

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            slot = self._advance()
            self._counts[slot][idx] += 1
            self._sums[slot] += value
            self._ns[slot] += 1
            if value > self._maxes[slot]:
                self._maxes[slot] = value

    def _aggregate(self):
        self._advance()
        nbins = len(self.buckets) + 1
        counts = [0] * nbins
        for sub in self._counts:
            for i in range(nbins):
                counts[i] += sub[i]
        return counts, sum(self._sums), sum(self._ns), max(self._maxes)

    def snapshot(self) -> dict:
        """Aggregated view of the live window (buckets/counts/sum/count)."""
        with self._lock:
            counts, total, count, vmax = self._aggregate()
        return {"buckets": list(self.buckets), "counts": counts,
                "sum": total, "count": count, "max": vmax,
                "window_s": self.window_s}

    @property
    def count(self) -> int:
        with self._lock:
            return self._aggregate()[2]

    def percentile(self, p: float) -> float:
        with self._lock:
            counts, _, count, vmax = self._aggregate()
        return _percentile_from_counts(self.buckets, counts, count, vmax, p)

    def rate(self) -> float:
        """Observations per second over the window."""
        return self.count / self.window_s

    def fraction_over(self, threshold: float) -> float:
        """Fraction of windowed observations above ``threshold``.

        Bucket-resolution: counts every bin whose upper bound exceeds
        ``threshold`` (exact when ``threshold`` is a bucket bound).
        Returns 0.0 for an empty window.
        """
        with self._lock:
            counts, _, count, _ = self._aggregate()
        if not count:
            return 0.0
        over = counts[-1]
        for i, upper in enumerate(self.buckets):
            if upper > threshold:
                over += counts[i]
        return over / count


class WindowedCounter:
    """Rolling-window event count (ring of sub-window tallies)."""

    __slots__ = ("name", "window_s", "sub_windows", "_sub_s", "_clock",
                 "_tallies", "_epoch", "_lock")

    def __init__(self, name: str, *, window_s: float = 60.0,
                 sub_windows: int = 12, clock=time.monotonic) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if sub_windows < 1:
            raise ValueError(f"sub_windows must be >= 1, got {sub_windows}")
        self.name = name
        self.window_s = float(window_s)
        self.sub_windows = int(sub_windows)
        self._sub_s = self.window_s / self.sub_windows
        self._clock = clock
        self._tallies = [0] * self.sub_windows
        self._epoch = None
        self._lock = threading.Lock()

    def _advance(self) -> int:
        idx = int(self._clock() / self._sub_s)
        if self._epoch is None:
            self._epoch = idx
        step = idx - self._epoch
        if step > 0:
            for k in range(1, min(step, self.sub_windows) + 1):
                self._tallies[(self._epoch + k) % self.sub_windows] = 0
            self._epoch = idx
        return self._epoch % self.sub_windows

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._tallies[self._advance()] += n

    def total(self) -> int:
        """Events inside the live window."""
        with self._lock:
            self._advance()
            return sum(self._tallies)

    def rate(self) -> float:
        """Events per second over the window."""
        return self.total() / self.window_s


class _Noop:
    """Do-nothing stand-in for every instrument type."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_INSTRUMENT = _Noop()


class MetricsRegistry:
    """Named instrument registry with snapshot/merge support."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = threading.Lock()

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name,
                                                Histogram(name, buckets))
        return h

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- snapshots -----------------------------------------------------------

    def as_dict(self) -> dict:
        """Serialisable snapshot (for manifests and worker hand-back)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"buckets": list(h.buckets), "counts": list(h.counts),
                    "sum": h.total, "count": h.count,
                    "overflow": h.counts[-1], "max": h.vmax}
                for n, h in sorted(self._histograms.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold an :meth:`as_dict` snapshot (e.g. from a pool worker) in.

        Counters and histograms accumulate; gauges adopt the incoming
        value.  Histograms with mismatched bucket bounds are skipped
        rather than corrupted (bounds are part of the instrument's
        identity).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, rec in snapshot.get("histograms", {}).items():
            h = self.histogram(name, rec.get("buckets", DEFAULT_BUCKETS))
            if list(h.buckets) != [float(b) for b in rec["buckets"]]:
                continue
            with h._lock:
                for i, n in enumerate(rec["counts"]):
                    h.counts[i] += int(n)
                h.total += float(rec["sum"])
                h.count += int(rec["count"])
                h.vmax = max(h.vmax, float(rec.get("max", 0.0)))

    def render(self) -> str:
        """Aligned text report of every instrument (``--profile`` output)."""
        lines = ["metrics", "-------"]
        rows = [(name, f"{c.value}") for name, c in
                sorted(self._counters.items())]
        rows += [(name, f"{g.value:g}") for name, g in
                 sorted(self._gauges.items())]
        rows += [(name, f"n={h.count} mean={h.mean:g}") for name, h in
                 sorted(self._histograms.items())]
        if not rows:
            return "\n".join(lines + ["  (no metrics recorded)"])
        width = max(len(name) for name, _ in rows)
        lines += [f"  {name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)


class _NoopMetrics(MetricsRegistry):
    """Registry whose instruments are shared do-nothing singletons."""

    enabled = False

    def counter(self, name: str):
        return _NOOP_INSTRUMENT

    def gauge(self, name: str):
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS):
        return _NOOP_INSTRUMENT


#: Shared disabled registry — the default when no observability is active.
NOOP_METRICS = _NoopMetrics()
