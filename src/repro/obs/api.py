"""Ambient observability context and the no-op fast path.

One :class:`Observability` (a tracer + a metrics registry) is *activated*
for the duration of a run, mirroring
:func:`repro.runtime.context.activate_runtime`; instrumentation sites call
the module-level accessors::

    from repro.obs.api import counter, span

    counter("quantile_cache.hits").inc(n)
    with span("solver.batch", node=tech.name, points=len(qs)):
        ...

With nothing activated the accessors resolve to shared no-op singletons —
one :class:`contextvars.ContextVar` lookup plus a do-nothing method call —
so the instrumented hot paths cost nothing measurable when observability
is off (see ``benchmarks/bench_obs_overhead.py``).

Pool workers reconstruct a child context from the serialisable
:meth:`Observability.worker_context` payload via
:meth:`Observability.for_worker`, and hand their finished spans/metrics
back with :meth:`Observability.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs.metrics import DEFAULT_BUCKETS, NOOP_METRICS, MetricsRegistry
from repro.obs.trace import NOOP_TRACER, Tracer

__all__ = ["Observability", "NOOP_OBS", "build_obs", "current_obs",
           "activate_obs", "counter", "gauge", "histogram", "span"]


@dataclass
class Observability:
    """One run's observability instruments.

    ``enabled`` is False only for the shared :data:`NOOP_OBS`; a real
    instance may still carry a disabled tracer (metrics-only mode).
    """

    tracer: Tracer = NOOP_TRACER
    metrics: MetricsRegistry = NOOP_METRICS
    enabled: bool = True

    # -- process-boundary plumbing ------------------------------------------

    def worker_context(self, stage: str | None = None) -> dict | None:
        """Serialisable payload a pool task carries to rebuild obs remotely.

        ``None`` when disabled, so workers skip collection entirely.
        """
        if not self.enabled:
            return None
        return {
            "trace": self.tracer.enabled,
            # current_trace_id (not trace_id): when dispatched from
            # inside a span that adopted a remote context — a serve
            # request — workers join the request's trace, not the
            # server's own.
            "trace_id": self.tracer.current_trace_id(),
            "parent": self.tracer.current_span(),
            "metrics": self.metrics.enabled,
            "stage": stage,
        }

    @classmethod
    def for_worker(cls, ctx: dict | None) -> "Observability":
        """A fresh worker-side context rebuilt from :meth:`worker_context`."""
        if not ctx:
            return NOOP_OBS
        tracer = (Tracer(trace_id=ctx.get("trace_id"),
                         parent=ctx.get("parent"))
                  if ctx.get("trace") else NOOP_TRACER)
        metrics = MetricsRegistry() if ctx.get("metrics") else NOOP_METRICS
        return cls(tracer=tracer, metrics=metrics)

    def export(self) -> dict:
        """Serialisable snapshot a worker returns with its result."""
        return {"spans": self.tracer.events() if self.tracer.enabled else [],
                "metrics": (self.metrics.as_dict()
                            if self.metrics.enabled else {})}

    def merge_export(self, snapshot: dict | None) -> None:
        """Fold a worker's :meth:`export` snapshot into this context."""
        if not snapshot:
            return
        if snapshot.get("spans"):
            self.tracer.absorb(snapshot["spans"])
        if snapshot.get("metrics"):
            self.metrics.merge(snapshot["metrics"])


#: Shared disabled context — the ContextVar default.
NOOP_OBS = Observability(tracer=NOOP_TRACER, metrics=NOOP_METRICS,
                         enabled=False)

_ACTIVE: ContextVar = ContextVar("repro_obs", default=NOOP_OBS)


def build_obs(trace: bool = False, metrics: bool = False) -> Observability:
    """An :class:`Observability` with the requested instruments live.

    Returns the shared :data:`NOOP_OBS` when both are off, keeping the
    disabled path allocation-free.
    """
    if not (trace or metrics):
        return NOOP_OBS
    return Observability(
        tracer=Tracer() if trace else NOOP_TRACER,
        metrics=MetricsRegistry() if metrics else NOOP_METRICS)


def current_obs() -> Observability:
    """The active observability context (never ``None``)."""
    return _ACTIVE.get()


@contextmanager
def activate_obs(obs: Observability):
    """Make ``obs`` the :func:`current_obs` inside the block."""
    token = _ACTIVE.set(obs)
    try:
        yield obs
    finally:
        _ACTIVE.reset(token)


# -- hot-path accessors ------------------------------------------------------


def counter(name: str):
    """The active registry's counter ``name`` (no-op when disabled)."""
    return _ACTIVE.get().metrics.counter(name)


def gauge(name: str):
    """The active registry's gauge ``name`` (no-op when disabled)."""
    return _ACTIVE.get().metrics.gauge(name)


def histogram(name: str, buckets=DEFAULT_BUCKETS):
    """The active registry's histogram ``name`` (no-op when disabled)."""
    return _ACTIVE.get().metrics.histogram(name, buckets)


def span(name: str, **attrs):
    """A span context manager on the active tracer (no-op when disabled)."""
    return _ACTIVE.get().tracer.span(name, **attrs)
