"""Run manifests: bit-reproducibility provenance for experiment artifacts.

A manifest is one JSON document describing everything that determined an
experiment run's numbers — root seed, technology-card fingerprints,
package and numpy versions, worker count, persistent-cache state before
and after, per-stage profiler counters and the full metrics snapshot —
written by ``python -m repro.experiments ... --metrics FILE``.

Identical re-runs (same command, same starting cache state) produce
identical manifests *modulo timing fields*: every wall-clock quantity
lives under a key matched by :data:`TIMING_KEYS` so
:func:`strip_timing` can reduce a manifest to its deterministic core
(used by the tests and ``scripts/validate_obs.py``).

The module also carries lightweight JSON schemas for the manifest and the
Chrome trace-event file plus :func:`validate_schema`, a dependency-free
subset validator (``type`` / ``required`` / ``properties`` / ``items``),
so CI can check both artifacts without installing ``jsonschema``.
"""

from __future__ import annotations

import json
import os
import platform

from repro.obs.flight import FLIGHT_SCHEMA as _FLIGHT_SCHEMA_REF

__all__ = ["MANIFEST_SCHEMA", "TRACE_SCHEMA", "TIMING_KEYS",
           "build_manifest", "write_manifest", "cache_file_state",
           "strip_timing", "validate_schema"]

MANIFEST_VERSION = 1

#: Key names (exact) holding wall-clock data; stripped when comparing
#: manifests for determinism.  ``t_s`` is the flight recorder's event
#: timestamp.
TIMING_KEYS = frozenset({
    "wall_s", "elapsed_wall_s", "timing", "worker_utilization", "t_s",
})


def cache_file_state(path: str | None = None) -> dict:
    """Entry count and byte size of the persistent quantile-cache file.

    Defaults to the active cache location
    (:func:`repro.runtime.cache.default_cache_dir`); a missing or corrupt
    file reads as empty — never fatal, matching the cache's own policy.
    """
    from repro.runtime.cache import default_cache_dir
    if path is None:
        path = os.path.join(default_cache_dir(), "quantiles.json")
    state = {"path": str(path), "entries": 0, "bytes": 0}
    try:
        state["bytes"] = os.path.getsize(path)
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        entries = payload.get("entries", {})
        if isinstance(entries, dict):
            state["entries"] = len(entries)
    except (OSError, ValueError):
        pass
    return state


def build_manifest(*, targets, fast: bool, jobs: int, root_seed: int,
                   profiler, metrics, cache_before: dict,
                   cache_after: dict, elapsed_wall_s: float,
                   trace_file: str | None = None,
                   resilience: dict | None = None,
                   faults: str | None = None,
                   backends: dict | None = None,
                   flight: dict | None = None) -> dict:
    """Assemble the provenance manifest for one finished run.

    ``profiler`` is a :class:`~repro.runtime.profile.Profiler` (or
    ``None``), ``metrics`` a
    :class:`~repro.obs.metrics.MetricsRegistry` (or ``None``); both are
    snapshotted, not referenced.  ``resilience`` is the run's fault
    ledger (:meth:`~repro.resilience.ledger.FaultLedger.as_dict`) and
    ``faults`` the ``--inject-faults`` spec, if any — together they make
    every recovery auditable from the artifact alone.  ``backends`` is
    the kernel-backend section from
    :func:`repro.core.backends.backend_manifest` (what was requested,
    what actually ran, whether a fallback fired); ``None`` records the
    default numpy backend.  ``flight`` is the serving flight-recorder
    snapshot (:meth:`repro.obs.flight.FlightRecorder.snapshot`), attached
    only for serve runs so one-shot experiment manifests stay unchanged.
    """
    import numpy as np

    from repro._version import __version__
    from repro.core.backends import backend_manifest
    from repro.devices.technology import available_technologies, get_technology
    from repro.runtime.cache import technology_fingerprint

    if backends is None:
        backends = backend_manifest("numpy")
    metric_snap = metrics.as_dict() if metrics is not None else {}
    counters = metric_snap.get("counters", {})
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "kind": "repro-run-manifest",
        "run": {
            "targets": [str(t) for t in targets],
            "fast": bool(fast),
            "jobs": int(jobs),
            "root_seed": int(root_seed),
            "faults": str(faults) if faults else None,
        },
        "environment": {
            "package_version": __version__,
            "numpy_version": np.__version__,
            "python_version": platform.python_version(),
        },
        "cards": {node: technology_fingerprint(get_technology(node))
                  for node in available_technologies()},
        "cache": {
            "path": cache_before.get("path"),
            "before": {k: cache_before[k] for k in ("entries", "bytes")},
            "after": {k: cache_after[k] for k in ("entries", "bytes")},
            "hits": int(counters.get("quantile_cache.hits", 0)),
            "misses": int(counters.get("quantile_cache.misses", 0)),
        },
        "backends": backends,
        "stages": profiler.as_dict() if profiler is not None else {},
        "metrics": metric_snap,
        "resilience": (resilience if resilience is not None
                       else {"events": [], "counts": {}}),
        "trace_file": trace_file,
        "timing": {"elapsed_wall_s": float(elapsed_wall_s)},
    }
    if flight is not None:
        manifest["flight"] = flight
    return manifest


def write_manifest(path: str, manifest: dict) -> None:
    """Write ``manifest`` as stable (sorted-key) JSON at ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def strip_timing(obj):
    """A deep copy of ``obj`` with every :data:`TIMING_KEYS` field removed.

    Two manifests from identical re-runs are equal after stripping.
    """
    if isinstance(obj, dict):
        return {k: strip_timing(v) for k, v in obj.items()
                if k not in TIMING_KEYS}
    if isinstance(obj, list):
        return [strip_timing(v) for v in obj]
    return obj


# -- schemas -----------------------------------------------------------------

_STAGE_SCHEMA = {
    "type": "object",
    "required": ["calls", "wall_s", "samples"],
    "properties": {"calls": {"type": "number"},
                   "wall_s": {"type": "number"},
                   "samples": {"type": "number"}},
}

MANIFEST_SCHEMA = {
    "type": "object",
    "required": ["manifest_version", "kind", "run", "environment", "cards",
                 "cache", "backends", "stages", "metrics", "resilience",
                 "timing"],
    "properties": {
        "manifest_version": {"type": "number"},
        "kind": {"type": "string"},
        "run": {
            "type": "object",
            "required": ["targets", "fast", "jobs", "root_seed"],
            "properties": {
                "targets": {"type": "array", "items": {"type": "string"}},
                "fast": {"type": "boolean"},
                "jobs": {"type": "number"},
                "root_seed": {"type": "number"},
            },
        },
        "environment": {
            "type": "object",
            "required": ["package_version", "numpy_version",
                         "python_version"],
        },
        "cards": {"type": "object"},
        "backends": {
            "type": "object",
            "required": ["requested", "active", "fallback", "available",
                         "bit_parity"],
            "properties": {
                "requested": {"type": "string"},
                "active": {"type": "string"},
                "fallback": {"type": "boolean"},
                "available": {"type": "array", "items": {"type": "string"}},
                "bit_parity": {"type": "boolean"},
            },
        },
        "cache": {
            "type": "object",
            "required": ["before", "after", "hits", "misses"],
            "properties": {"hits": {"type": "number"},
                           "misses": {"type": "number"}},
        },
        "stages": {"type": "object", "additional": _STAGE_SCHEMA},
        "metrics": {"type": "object"},
        "resilience": {
            "type": "object",
            "required": ["events", "counts"],
            "properties": {
                "events": {
                    "type": "array",
                    "items": {"type": "object", "required": ["event"]},
                },
                "counts": {"type": "object"},
            },
        },
        "timing": {"type": "object"},
        "flight": _FLIGHT_SCHEMA_REF,
    },
}

TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "pid": {"type": "number"},
                    "tid": {"type": "number"},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "boolean": bool,
}


def validate_schema(obj, schema, path: str = "$") -> list:
    """Errors from checking ``obj`` against a mini JSON schema.

    Supports ``type``, ``required``, ``properties``, ``items`` and
    ``additional`` (a schema applied to every value of an object not
    listed in ``properties``).  Returns a list of human-readable error
    strings; empty means valid.
    """
    errors = []
    expected = schema.get("type")
    if expected is not None:
        pytype = _TYPES[expected]
        if isinstance(obj, bool) and expected == "number":
            errors.append(f"{path}: expected number, got boolean")
            return errors
        if not isinstance(obj, pytype):
            errors.append(
                f"{path}: expected {expected}, got {type(obj).__name__}")
            return errors
    if isinstance(obj, dict):
        for key in schema.get("required", ()):
            if key not in obj:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in obj:
                errors.extend(validate_schema(obj[key], sub,
                                              f"{path}.{key}"))
        extra = schema.get("additional")
        if extra is not None:
            for key, value in obj.items():
                if key not in props:
                    errors.extend(validate_schema(value, extra,
                                                  f"{path}.{key}"))
    if isinstance(obj, list):
        items = schema.get("items")
        if items is not None:
            for i, value in enumerate(obj):
                errors.extend(validate_schema(value, items,
                                              f"{path}[{i}]"))
    return errors
