"""Quickstart: the five questions the paper answers, in ~40 lines.

Run with::

    python examples/quickstart.py
"""

from repro import VariationAnalyzer
from repro.mitigation import solve_voltage_margin
from repro.sparing import solve_spares
from repro.units import to_ns

NODE = "90nm"
VDD = 0.55  # near-threshold operating point


def main() -> None:
    analyzer = VariationAnalyzer(NODE)

    # 1. How much does a 50-FO4 critical path vary at near threshold?
    print(f"[{NODE}] 50-FO4 chain 3sigma/mu:")
    for vdd in (1.0, 0.7, VDD, 0.5):
        print(f"  {vdd:4.2f} V -> {100 * analyzer.chain_variation(vdd):5.2f} %"
              f"  (mean {to_ns(analyzer.chain_mean_delay(vdd)):6.2f} ns)")

    # 2. What does that do to a 128-wide SIMD chip?
    drop = 100 * analyzer.performance_drop(VDD)
    print(f"\n128-wide SIMD @ {VDD} V: variation-induced performance drop "
          f"{drop:.1f} % vs {analyzer.nominal_vdd:.1f} V sign-off")

    # 3. How many spare lanes fix it (structural duplication)?
    spares = solve_spares(analyzer, VDD)
    print(f"structural duplication: {spares.summary()}")

    # 4. Or how much supply margin (voltage margining)?
    margin = solve_voltage_margin(analyzer, VDD)
    print(f"voltage margining:      {margin.summary()}")

    # 5. Which is cheaper here?
    if spares.feasible and spares.power_overhead <= margin.power_overhead:
        choice = f"duplication (+{100 * spares.power_overhead:.1f} % power)"
    else:
        choice = f"margining (+{100 * margin.power_overhead:.1f} % power)"
    print(f"\npreferred technique at {NODE}@{VDD}V: {choice}")


if __name__ == "__main__":
    main()
