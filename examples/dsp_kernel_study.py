"""DSP kernels on the near-threshold SIMD machine.

Runs the camera/DSP kernels Diet SODA targets (FIR, FFT, 2-D
convolution, colour-space conversion) across operating voltages and SIMD
widths — quantifying the paper's premise that data-level parallelism
buys back the near-threshold slowdown, including each kernel's Amdahl
limit and the variation-aware clock.

Run with::

    python examples/dsp_kernel_study.py
"""

from repro import VariationAnalyzer
from repro.energy import EnergyModel
from repro.simd import KERNELS, SIMDMachine, execute

NODE = "90nm"


def sweep_kernel(analyzer, energy_model, name: str, factory) -> None:
    workload = factory()
    print(f"--- {workload.name} (scalar fraction "
          f"{100 * workload.scalar_fraction:.2f} %) ---")
    baseline = execute(workload,
                       SIMDMachine(analyzer=analyzer, vdd=1.0, width=16),
                       energy_model)
    print(f"  reference: {baseline.summary()}")
    for vdd, width in ((1.0, 128), (0.6, 128), (0.55, 128), (0.5, 128)):
        machine = SIMDMachine(analyzer=analyzer, vdd=vdd, width=width)
        report = execute(workload, machine, energy_model)
        speedup = baseline.runtime / report.runtime
        energy_ratio = report.energy / baseline.energy
        marker = " <- beats reference" if speedup > 1 else ""
        print(f"  {report.summary()}  speedup {speedup:5.2f}x "
              f"energy {energy_ratio:4.2f}x{marker}")
    print()


def main() -> None:
    analyzer = VariationAnalyzer(NODE)
    energy_model = EnergyModel(analyzer.tech)
    print(f"{NODE}: 16-wide @ nominal voltage as the reference design;\n"
          f"can a 128-wide near-threshold machine beat it?\n")
    for name, factory in KERNELS.items():
        sweep_kernel(analyzer, energy_model, name, factory)

    print("conclusion: for DLP-rich kernels the wide NTV machine matches "
          "or beats the narrow nominal design at a fraction of the "
          "energy; kernels with scalar bottlenecks benefit less "
          "(Amdahl) — exactly the workload class the paper targets.")


if __name__ == "__main__":
    main()
