"""Near-threshold sign-off of a camera-SoC SIMD DSP (Diet SODA scenario).

The paper's target system is Diet SODA — a 128-wide SIMD DSP for digital
cameras whose datapath drops to near-threshold voltage during
low-throughput (preview) operation.  This example walks the full
variation sign-off a designer would run before committing to the
operating point:

1. characterise the chip-delay distribution at the near-threshold point,
2. quantify the timing-failure rate against the nominal-voltage target,
3. size each mitigation (spares / margin / frequency) and combinations,
4. pick the minimum-power design and emit the sign-off report.

Run with::

    python examples/camera_dsp_signoff.py [node] [vdd_mV]
    python examples/camera_dsp_signoff.py 45nm 600
"""

import sys

from repro import VariationAnalyzer
from repro.mitigation import (
    optimize_combination,
    solve_frequency_margin,
    solve_voltage_margin,
)
from repro.sparing import solve_spares
from repro.units import to_ns


def signoff(node: str, vdd: float) -> None:
    analyzer = VariationAnalyzer(node)
    target = analyzer.target_delay(vdd)
    print(f"=== {node} camera DSP, 128-wide SIMD @ {1e3 * vdd:.0f} mV ===")
    print(f"nominal sign-off: {analyzer.nominal_signoff_fo4():.1f} FO4 "
          f"@ {analyzer.nominal_vdd:g} V")
    print(f"target delay at {1e3 * vdd:.0f} mV: {to_ns(target):.3f} ns")

    # -- 1. the problem ----------------------------------------------------
    dist = analyzer.chip_distribution(vdd, n_samples=20_000, seed=42)
    fail = float((dist.samples > target).mean())
    print(f"\nunmitigated chip: p99 = {to_ns(dist.signoff_delay):.3f} ns, "
          f"timing-failure rate vs target = {100 * fail:.1f} % of chips")
    print(f"performance drop (Fig. 4 metric): "
          f"{100 * analyzer.performance_drop(vdd):.1f} %")

    # -- 2. the three simple techniques -------------------------------------
    dup = solve_spares(analyzer, vdd)
    mar = solve_voltage_margin(analyzer, vdd)
    freq = solve_frequency_margin(analyzer, vdd)
    print("\nmitigation options:")
    print(f"  duplication: {dup.summary()}")
    print(f"  margining:   {mar.summary()}")
    print(f"  freq-margin: {freq.summary()}")

    # -- 3. the combination (paper Section 4.4) -----------------------------
    combo = optimize_combination(analyzer, vdd)
    print(f"  combined:    {combo.summary()}")

    # -- 4. decision ---------------------------------------------------------
    candidates = []
    if dup.feasible:
        candidates.append(("duplication only", dup.power_overhead))
    if mar.feasible:
        candidates.append(("margining only", mar.power_overhead))
    if combo.feasible:
        candidates.append((f"combined ({combo.spares} spares + "
                           f"{combo.margin_mv:.0f} mV)",
                           combo.power_overhead))
    name, power = min(candidates, key=lambda c: c[1])
    print(f"\nsign-off decision: {name} at +{100 * power:.2f} % power")
    print("(frequency margining rejected: iso-throughput requirement)")


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "45nm"
    vdd = float(sys.argv[2]) / 1e3 if len(sys.argv) > 2 else 0.60
    signoff(node, vdd)


if __name__ == "__main__":
    main()
