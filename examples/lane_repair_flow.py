"""Manufacturing test & repair flow for spare SIMD lanes.

Simulates what happens after fabrication: each chip's lanes are screened
against the target clock at the near-threshold voltage, faulty lanes are
mapped out through the XRAM crossbar (global sparing) or within clusters
(local sparing, Synctium-style), and the line yield is tallied.
Reproduces the paper's Appendix D argument that global sparing absorbs
bursty faults local sparing cannot.

Run with::

    python examples/lane_repair_flow.py
"""

from repro import VariationAnalyzer
from repro.sparing import compare_placements, repair_flow
from repro.units import to_ns

NODE = "90nm"
VDD = 0.55
SPARES = 8


def inspect_some_chips(analyzer, n_chips: int = 6) -> None:
    """Walk a few individual chips through test-and-repair."""
    clock = analyzer.target_delay(VDD)
    print(f"screening clock: {to_ns(clock):.3f} ns "
          f"({NODE} @ {VDD} V, {SPARES} spares)\n")
    for chip in range(n_chips):
        report = repair_flow(analyzer, VDD, spares=SPARES, seed=100 + chip)
        print(f"chip {chip}: {report.summary()}")


def line_yield(analyzer) -> None:
    """Repair yield of global vs local placements at equal spare budget."""
    print(f"\nrepair yield, 128-wide + {SPARES} spares @ {VDD} V:")
    results = compare_placements(analyzer, VDD, spares=SPARES,
                                 cluster_sizes=(16, 32, 64),
                                 n_chips=6000, seed=7)
    for res in results:
        print(f"  {res.summary()}")
    print("\nglobal sparing through the XRAM absorbs bursty faults that "
          "strand local spares in other clusters.")


def main() -> None:
    analyzer = VariationAnalyzer(NODE)
    inspect_some_chips(analyzer)
    line_yield(analyzer)


if __name__ == "__main__":
    main()
