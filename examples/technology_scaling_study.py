"""Technology-scaling study: how the mitigation answer changes 90nm -> 22nm.

Sweeps the four calibrated nodes and reports, per node and near-threshold
voltage: chain variation (Fig. 2), chip-level performance drop (Fig. 4),
the sized mitigations (Tables 1-2) and the winning technique (Fig. 7) —
the paper's narrative in one table.

Run with::

    python examples/technology_scaling_study.py
"""

from repro import VariationAnalyzer, available_technologies
from repro.mitigation import compare_techniques

VOLTAGES = (0.50, 0.55, 0.60, 0.65, 0.70)


def main() -> None:
    header = (f"{'node':>5s} {'Vdd':>5s} {'chain 3s/mu':>12s} "
              f"{'perf drop':>10s} {'spares':>7s} {'margin':>9s} "
              f"{'winner':>12s}")
    print(header)
    print("=" * len(header))
    for node in available_technologies():
        analyzer = VariationAnalyzer(node)
        for vdd in VOLTAGES:
            chain = 100 * analyzer.chain_variation(vdd)
            drop = 100 * analyzer.performance_drop(vdd)
            comparison = compare_techniques(analyzer, vdd)
            spares = (str(comparison.duplication_spares)
                      if comparison.duplication_feasible else ">128")
            print(f"{node:>5s} {vdd:5.2f} {chain:11.1f}% {drop:9.1f}% "
                  f"{spares:>7s} {comparison.margin_mv:7.1f}mV "
                  f"{comparison.winner:>12s}")
        print("-" * len(header))

    print("\ntakeaways (matching the paper's conclusions):")
    print(" * 90nm: drops stay ~5% even at 0.5 V -> a handful of spares "
          "suffices; no complex architectural enhancement needed")
    print(" * scaling to 22nm multiplies chain variation ~2.5x at 0.55 V; "
          "spare demand explodes and margining (or a combination) wins at "
          "the lowest voltages")


if __name__ == "__main__":
    main()
