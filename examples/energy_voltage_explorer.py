"""Energy/voltage explorer: pick an operating point under a throughput
constraint.

The paper's Section 2 argument: near-threshold operation trades ~10x
delay for ~severalfold energy savings, and SIMD width can buy the
throughput back for data-parallel workloads.  This example combines the
energy model (Fig. 9) with the variation-aware chip delay (Fig. 4) to
answer: *at each supply voltage, how many extra lanes restore nominal
throughput, and what is the energy per operation including the
variation penalty?*

Run with::

    python examples/energy_voltage_explorer.py
"""

import math

import numpy as np

from repro import VariationAnalyzer
from repro.energy import EnergyModel, minimum_energy_voltage, region_boundaries

NODE = "90nm"


def main() -> None:
    analyzer = VariationAnalyzer(NODE)
    model = EnergyModel(analyzer.tech)
    sub_near, near_super = region_boundaries(analyzer.tech)
    v_min = minimum_energy_voltage(model)

    print(f"{NODE}: sub/near boundary {1e3 * sub_near:.0f} mV, "
          f"near/super {1e3 * near_super:.0f} mV, "
          f"energy minimum at {1e3 * v_min:.0f} mV\n")

    header = (f"{'Vdd':>6s} {'region':>6s} {'E/op':>7s} {'delay':>7s} "
              f"{'+delay(var)':>11s} {'lanes for iso-thr':>17s} "
              f"{'E savings':>10s}")
    print(header)
    print("=" * len(header))

    for vdd in np.round(np.arange(0.45, 1.001, 0.05), 3):
        point = model.evaluate(float(vdd))
        # Variation-aware slowdown: absolute delay ratio times the Fig. 4
        # variation penalty at this voltage.
        var_penalty = 1.0 + analyzer.performance_drop(float(vdd))
        slowdown = point.delay * var_penalty
        lanes = math.ceil(slowdown)  # width multiplier for iso-throughput
        print(f"{vdd:6.2f} {point.region:>6s} {point.total_energy:7.3f} "
              f"{point.delay:6.1f}x {100 * (var_penalty - 1):10.1f}% "
              f"{lanes:13d}x128 {1 / point.total_energy:9.1f}x")

    print("\nreading: dropping from 1.0 V to ~0.5 V costs ~13x delay "
          "(plus a few % variation penalty) but saves ~4x energy/op —")
    print("a DLP workload that can widen the SIMD array recovers the "
          "throughput while keeping the energy win (the paper's premise).")


if __name__ == "__main__":
    main()
