"""Benchmark: regenerate Table 1 (spare counts + overheads grid).

Workload: 20 deterministic spare solves (binary searches over integer
spare budgets at full 128-wide scale).
"""

from conftest import run_once

from repro.devices.paper_anchors import TABLE1


def test_regenerate_table1(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "table1", False)
    save_report(result)
    data = result.data
    # Shape contract: saturation where the paper saturates; feasible cells
    # within ~3x of the paper counts; exponential growth toward 0.5 V.
    for node, rows in TABLE1.items():
        for vdd, entry in rows.items():
            cell = data[node][vdd]
            if entry.saturated:
                assert (not cell["feasible"]) or cell["spares"] > 96
            else:
                assert cell["feasible"]
                ratio = (cell["spares"] + 1) / (entry.spares + 1)
                assert 1 / 3 < ratio < 3
    assert data["90nm"][0.5]["spares"] > 4 * data["90nm"][0.6]["spares"]
