"""Benchmark: observability overhead, disabled and enabled.

The observability layer promises a near-free disabled path: every
instrumentation site resolves through one :class:`~contextvars.ContextVar`
lookup to shared no-op singletons.  This benchmark quantifies that promise
on a fig4-style sign-off sweep (fresh engines, disk cache off, so the
solver pays its true cost) and writes ``BENCH_obs.json`` at the repository
root:

* **off** — the sweep with no observability active (what every library
  user gets by default); this exercises the instrumented code on its
  no-op path.
* **on** — the same sweep under a live tracer + metrics registry.
* **disabled overhead** — the no-op path's cost attributed to
  instrumentation, computed from the *measured* number of instrumentation
  calls the sweep makes (counted with a tallying registry) times the
  *measured* per-call cost of the disabled accessors, as a fraction of
  sweep time.  Asserted ``< 2%``.
* **serve telemetry** — end-to-end serving throughput with full
  telemetry (tracing + rolling metrics + flight recorder) against a
  server with telemetry off (no-op observability, flight disabled):
  fresh in-process servers per variant, identical unique-point request
  grids, interleaved repeats taking the best run.  The enabled
  overhead is asserted ``< 2%`` in full (non-smoke) runs.

Run directly::

    python benchmarks/bench_obs_overhead.py            # full
    python benchmarks/bench_obs_overhead.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
import time
from pathlib import Path

# The cache must be off before repro is imported anywhere down the line.
os.environ.setdefault("REPRO_CACHE_DISABLE", "1")

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.chip_delay import ChipDelayEngine            # noqa: E402
from repro.devices.technology import get_technology          # noqa: E402
from repro.obs import api                                    # noqa: E402
from repro.obs.api import activate_obs, build_obs            # noqa: E402
from repro.obs.metrics import MetricsRegistry                # noqa: E402
from repro.runtime import build_runtime                      # noqa: E402
from repro.serve import ServeConfig, SignoffServer           # noqa: E402
from repro.serve.client import ServeClient                   # noqa: E402

NODE = "22nm"
Q = 0.99
SPARES = 0.0

#: Small serving architecture: solves stay fast, so the per-request
#: telemetry work is a meaningful fraction of the measured wall time.
SERVE_ARCH = dict(width=4, paths_per_lane=5, chain_length=10)

#: Disabled-path budget for the instrumentation, percent of sweep time.
MAX_DISABLED_OVERHEAD_PCT = 2.0

#: Enabled-telemetry budget for the serving path, percent of throughput.
MAX_SERVE_OVERHEAD_PCT = 2.0


class _TallyingMetrics(MetricsRegistry):
    """A live registry that also counts how often instruments are fetched."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def counter(self, name):
        self.calls += 1
        return super().counter(name)

    def gauge(self, name):
        self.calls += 1
        return super().gauge(name)

    def histogram(self, name, buckets=None):
        self.calls += 1
        if buckets is None:
            return super().histogram(name)
        return super().histogram(name, buckets)


def sweep_once(tech, vdds) -> float:
    """One fig4-style sweep on a fresh engine; returns wall seconds."""
    engine = ChipDelayEngine(tech)
    t0 = time.perf_counter()
    engine.chip_quantile_batch(vdds, Q, SPARES)
    return time.perf_counter() - t0


def count_obs_calls(tech, vdds) -> tuple:
    """(metric-instrument fetches, spans) one sweep performs."""
    obs = build_obs(trace=True, metrics=True)
    tally = _TallyingMetrics()
    obs.metrics = tally
    with activate_obs(obs):
        sweep_once(tech, vdds)
    return tally.calls, len(obs.tracer)


def disabled_call_cost(iterations: int) -> dict:
    """Measured per-call cost (seconds) of the no-op accessors."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        api.counter("bench.noop").inc()
    counter_s = (time.perf_counter() - t0) / iterations

    noop_span = api.span  # resolves to the shared nullcontext per call
    t0 = time.perf_counter()
    for _ in range(iterations):
        with noop_span("bench.noop"):
            pass
    span_s = (time.perf_counter() - t0) / iterations
    return {"counter_s": counter_s, "span_s": span_s}


class _ServerThread:
    """A SignoffServer on a private event loop in a daemon thread."""

    def __init__(self, config: ServeConfig, runtime) -> None:
        self.server = SignoffServer(config, runtime)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._serve())
        self._loop.close()

    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(20):
            raise RuntimeError("benchmark server failed to start")
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(20)


def serve_run(telemetry: bool, vdds) -> float:
    """Wall seconds to serve one unique-point grid, one request each.

    ``telemetry=True`` runs the full stack — tracer, live metrics
    registry with rolling windows, flight recorder; ``telemetry=False``
    is the no-op observability path with the flight ring disabled.  A
    fresh server (and so a cold coalescing memo) per call keeps the two
    variants' work identical; a warm-up request outside the timed grid
    pays the engine construction up front.
    """
    runtime = build_runtime(jobs=1, trace=telemetry, metrics=telemetry)
    config = ServeConfig(port=0,
                         flight_capacity=512 if telemetry else 0)
    try:
        with _ServerThread(config, runtime) as h:
            with ServeClient("127.0.0.1", h.server.port) as client:
                client.chip_quantile(NODE, vdd=0.9, **SERVE_ARCH)
                t0 = time.perf_counter()
                for v in vdds:
                    client.chip_quantile(NODE, vdd=float(v), **SERVE_ARCH)
                return time.perf_counter() - t0
    finally:
        runtime.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer sweep points and repeats")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_obs.json")
    args = parser.parse_args(argv)

    n_points = 12 if args.smoke else 32
    repeats = 3 if args.smoke else 5
    micro_iters = 100_000 if args.smoke else 1_000_000

    tech = get_technology(NODE)
    vdds = np.linspace(tech.min_vdd, tech.nominal_vdd, n_points)
    sweep_once(tech, vdds)           # warm-up: quadratures, numpy caches

    off_s, on_s = [], []
    live = build_obs(trace=True, metrics=True)
    for _ in range(repeats):
        off_s.append(sweep_once(tech, vdds))
        with activate_obs(live):
            on_s.append(sweep_once(tech, vdds))
    t_off, t_on = min(off_s), min(on_s)

    metric_calls, span_calls = count_obs_calls(tech, vdds)
    cost = disabled_call_cost(micro_iters)
    disabled_obs_s = (metric_calls * cost["counter_s"]
                      + span_calls * cost["span_s"])
    disabled_pct = 100.0 * disabled_obs_s / t_off
    enabled_pct = 100.0 * (t_on - t_off) / t_off

    print(f"sweep ({NODE}, {n_points} points): "
          f"off {1e3 * t_off:.1f} ms   on {1e3 * t_on:.1f} ms   "
          f"enabled overhead {enabled_pct:+.2f}%")
    print(f"instrumentation calls per sweep: {metric_calls} metric fetches, "
          f"{span_calls} spans")
    print(f"disabled accessor cost: counter {1e9 * cost['counter_s']:.0f} ns, "
          f"span {1e9 * cost['span_s']:.0f} ns "
          f"-> disabled-mode overhead {disabled_pct:.4f}% "
          f"(budget {MAX_DISABLED_OVERHEAD_PCT}%)")

    n_serve = 16 if args.smoke else 40
    serve_repeats = 2 if args.smoke else 5
    serve_vdds = np.linspace(0.5, 0.9, n_serve)
    serve_off, serve_on = [], []
    for _ in range(serve_repeats):
        serve_off.append(serve_run(False, serve_vdds))
        serve_on.append(serve_run(True, serve_vdds))
    s_off, s_on = min(serve_off), min(serve_on)
    serve_pct = 100.0 * (s_on - s_off) / s_off
    print(f"serve ({n_serve} requests, best of {serve_repeats}): "
          f"telemetry off {1e3 * s_off:.1f} ms ({n_serve / s_off:.0f} rps)"
          f"   on {1e3 * s_on:.1f} ms ({n_serve / s_on:.0f} rps)   "
          f"overhead {serve_pct:+.2f}% (budget {MAX_SERVE_OVERHEAD_PCT}%)")

    payload = {
        "benchmark": "obs_overhead",
        "smoke": bool(args.smoke),
        "config": {
            "node": NODE,
            "q": Q,
            "spares": SPARES,
            "points": n_points,
            "repeats": repeats,
            "micro_iterations": micro_iters,
            "cache_disabled": True,
            "sweep": "fig4-style (min_vdd..nominal_vdd)",
        },
        "off_s": t_off,
        "on_s": t_on,
        "enabled_overhead_pct": enabled_pct,
        "obs_calls": {"metric_fetches": metric_calls, "spans": span_calls},
        "disabled_ns_per_call": {
            "counter": 1e9 * cost["counter_s"],
            "span": 1e9 * cost["span_s"],
        },
        "disabled_overhead_pct": disabled_pct,
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        "serve": {
            "arch": SERVE_ARCH,
            "requests": n_serve,
            "repeats": serve_repeats,
            "telemetry_off_s": s_off,
            "telemetry_on_s": s_on,
            "rps_off": n_serve / s_off,
            "rps_on": n_serve / s_on,
            "enabled_overhead_pct": serve_pct,
            "max_overhead_pct": MAX_SERVE_OVERHEAD_PCT,
            "passed": serve_pct < MAX_SERVE_OVERHEAD_PCT,
        },
        "passed": disabled_pct < MAX_DISABLED_OVERHEAD_PCT,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output}")

    assert disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled-mode observability overhead {disabled_pct:.3f}% exceeds "
        f"the {MAX_DISABLED_OVERHEAD_PCT}% budget")
    if not args.smoke:
        # The serve comparison is two live servers, so it carries real
        # scheduling noise; the budget is only enforced on full runs
        # (more repeats, larger grid), never on CI smoke.
        assert serve_pct < MAX_SERVE_OVERHEAD_PCT, (
            f"telemetry-enabled serve overhead {serve_pct:.3f}% exceeds "
            f"the {MAX_SERVE_OVERHEAD_PCT}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
