"""Benchmark: regenerate Figure 7 (duplication vs margining power, 4 nodes).

Workload: 2 solver runs (spares + margin) per cell over a 5-voltage x
4-node grid — 40 deterministic optimisations.
"""

from conftest import run_once


def test_regenerate_fig7(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig7", False)
    save_report(result)
    data = result.data
    # Shape contract (the paper's design guideline): duplication wins the
    # high-voltage/low-variation corner at 90nm; margining takes over at
    # low voltage on the advanced nodes.
    rows90 = {r["vdd"]: r for r in data["90nm"]["rows"]}
    assert rows90[0.7]["winner"] == "duplication"
    for node in ("45nm", "32nm", "22nm"):
        rows = {r["vdd"]: r for r in data[node]["rows"]}
        assert rows[0.5]["winner"] == "margining"
        assert data[node]["crossover"] is not None
