"""Benchmark: the parallel runtime layer.

Two headline claims of ``repro.runtime``:

* a rerun of fig4 (48 deterministic quantile solves) is measurably faster
  because every solve hits the persistent :class:`QuantileCache`;
* :class:`ParallelSampler` output is bit-identical regardless of the
  worker count (sharded ``SeedSequence.spawn`` streams).
"""

import time

import numpy as np

from conftest import run_once

from repro.devices.technology import get_technology
from repro.runtime import ParallelSampler


def test_fig4_rerun_hits_quantile_cache(benchmark, tmp_path, monkeypatch,
                                        save_report):
    from repro.experiments.registry import get_analyzer, run_experiment

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    get_analyzer.cache_clear()
    start = time.perf_counter()
    cold = run_experiment("fig4")
    cold_s = time.perf_counter() - start

    get_analyzer.cache_clear()   # drop in-memory state: disk hits only
    warm = run_once(benchmark, run_experiment, "fig4")
    warm_s = benchmark.stats.stats.mean
    get_analyzer.cache_clear()   # don't leak tmp-cache analyzers

    save_report(warm)
    assert warm.data == cold.data
    assert warm_s < 0.5 * cold_s, (
        f"cache rerun not faster: cold={cold_s:.3f}s warm={warm_s:.3f}s")


def test_parallel_sampler_jobs4_matches_serial(benchmark):
    tech = get_technology("90nm")
    kwargs = dict(width=4, paths_per_lane=3, chain_length=5, n_chips=2000,
                  root_seed=42)
    with ParallelSampler(1) as serial:
        expected = serial.system_delays(tech, 0.6, **kwargs)

    def sharded():
        with ParallelSampler(4) as parallel:
            return parallel.system_delays(tech, 0.6, **kwargs)

    result = run_once(benchmark, sharded)
    np.testing.assert_array_equal(result, expected)
