"""Benchmark: fault-free overhead of the resilience layer.

The fault-tolerance machinery (retry dispatcher, fault lab, checksummed
cache, solver guardrails) promises a near-free fault-free path: when no
faults are injected and nothing fails, every hook is a ContextVar read, a
dict lookup, a CRC32 over a short string, or one vectorized finiteness
mask.  This benchmark quantifies that promise on a fig4-style sign-off
sweep and writes ``BENCH_resilience.json`` at the repository root:

* **sweep** — a fresh-engine ``chip_quantile_batch`` voltage sweep (disk
  cache off, so the solver pays its true cost).
* **hook counts** — the *measured* number of fault-plan lookups and
  ledger fetches the sweep makes (counted by patching the accessors), and
  the checksum count of a cache round-trip sized like the sweep.
* **fault-free overhead** — measured hook counts times *measured*
  per-call costs, plus the per-batch NaN guard, as a fraction of sweep
  time.  Asserted ``< 2%``.

Run directly::

    python benchmarks/bench_resilience.py            # full
    python benchmarks/bench_resilience.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import zlib
from pathlib import Path

# The cache must be off before repro is imported anywhere down the line.
os.environ.setdefault("REPRO_CACHE_DISABLE", "1")

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import chip_delay                            # noqa: E402
from repro.core.chip_delay import ChipDelayEngine            # noqa: E402
from repro.devices.technology import get_technology          # noqa: E402
from repro.resilience import faultlab                        # noqa: E402
from repro.resilience.faultlab import active_plan            # noqa: E402
from repro.resilience.ledger import current_ledger           # noqa: E402
from repro.runtime.cache import QuantileCache, _entry_checksum  # noqa: E402

NODE = "22nm"
Q = 0.99
SPARES = 0.0

#: Fault-free budget for the resilience hooks, percent of sweep time.
MAX_FAULT_FREE_OVERHEAD_PCT = 2.0


def sweep_once(tech, vdds) -> float:
    """One fig4-style sweep on a fresh engine; returns wall seconds."""
    engine = ChipDelayEngine(tech)
    t0 = time.perf_counter()
    engine.chip_quantile_batch(vdds, Q, SPARES)
    return time.perf_counter() - t0


def count_hook_calls(tech, vdds) -> dict:
    """How many resilience hooks one sweep performs (measured, not derived)."""
    calls = {"active_plan": 0, "current_ledger": 0}

    def tally_plan():
        calls["active_plan"] += 1
        return active_plan()

    def tally_ledger():
        calls["current_ledger"] += 1
        return current_ledger()

    saved = (chip_delay.active_plan, chip_delay.current_ledger)
    chip_delay.active_plan = tally_plan
    chip_delay.current_ledger = tally_ledger
    try:
        sweep_once(tech, vdds)
    finally:
        chip_delay.active_plan, chip_delay.current_ledger = saved
    return calls


def hook_call_cost(iterations: int) -> dict:
    """Measured per-call cost (seconds) of the fault-free hooks."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        active_plan()
    plan_s = (time.perf_counter() - t0) / iterations

    t0 = time.perf_counter()
    for _ in range(iterations):
        current_ledger()
    ledger_s = (time.perf_counter() - t0) / iterations

    key = "22nm:deadbeefdeadbeef:w128:p100:c50:gh16-16-16:v0.5:q0.99:s0.0"
    hexv = (1.5e-9).hex()
    t0 = time.perf_counter()
    for _ in range(iterations):
        _entry_checksum(key, hexv)
    checksum_s = (time.perf_counter() - t0) / iterations
    return {"plan_s": plan_s, "ledger_s": ledger_s, "checksum_s": checksum_s}


def nan_guard_cost(n_points: int, repeats: int = 200) -> float:
    """Seconds one batch pays for the post-solve finiteness mask."""
    uout = np.linspace(1e-9, 2e-9, n_points)
    t0 = time.perf_counter()
    for _ in range(repeats):
        bad = ~np.isfinite(uout) | (uout <= 0.0)
        bad.any()
    return (time.perf_counter() - t0) / repeats


def cache_roundtrip(n_entries: int) -> dict:
    """Wall time of a checksummed put+get round sized like one sweep."""
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "quantiles.json")
        items = [(f"bench:key:{i}", 1e-9 * (1 + i)) for i in range(n_entries)]
        cache = QuantileCache(path=path, enabled=True)
        t0 = time.perf_counter()
        cache.put_many(items)
        put_s = time.perf_counter() - t0
        fresh = QuantileCache(path=path, enabled=True)
        t0 = time.perf_counter()
        fresh.get_many([k for k, _ in items])
        get_s = time.perf_counter() - t0
    return {"put_s": put_s, "get_s": get_s}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer sweep points and repeats")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_resilience.json")
    args = parser.parse_args(argv)

    n_points = 12 if args.smoke else 32
    repeats = 3 if args.smoke else 5
    micro_iters = 100_000 if args.smoke else 1_000_000

    tech = get_technology(NODE)
    vdds = np.linspace(tech.min_vdd, tech.nominal_vdd, n_points)
    sweep_once(tech, vdds)           # warm-up: quadratures, numpy caches

    t_sweep = min(sweep_once(tech, vdds) for _ in range(repeats))
    calls = count_hook_calls(tech, vdds)
    cost = hook_call_cost(micro_iters)
    guard_s = nan_guard_cost(n_points)
    # Per-entry checksums: one sweep caches ~n_points entries, each
    # checksummed once on write and once on a later validated read.
    checksum_calls = 2 * n_points
    hook_s = (calls["active_plan"] * cost["plan_s"]
              + calls["current_ledger"] * cost["ledger_s"]
              + checksum_calls * cost["checksum_s"]
              + guard_s)
    overhead_pct = 100.0 * hook_s / t_sweep
    roundtrip = cache_roundtrip(n_points)

    print(f"sweep ({NODE}, {n_points} points): {1e3 * t_sweep:.1f} ms")
    print(f"resilience hooks per sweep: {calls['active_plan']} plan lookups, "
          f"{calls['current_ledger']} ledger fetches, "
          f"{checksum_calls} entry checksums")
    print(f"hook costs: plan {1e9 * cost['plan_s']:.0f} ns, "
          f"ledger {1e9 * cost['ledger_s']:.0f} ns, "
          f"checksum {1e9 * cost['checksum_s']:.0f} ns, "
          f"NaN guard {1e6 * guard_s:.2f} us/batch")
    print(f"fault-free overhead {overhead_pct:.4f}% "
          f"(budget {MAX_FAULT_FREE_OVERHEAD_PCT}%)")
    print(f"checksummed cache round-trip ({n_points} entries): "
          f"put {1e3 * roundtrip['put_s']:.2f} ms, "
          f"get {1e3 * roundtrip['get_s']:.2f} ms")

    payload = {
        "benchmark": "resilience_overhead",
        "smoke": bool(args.smoke),
        "config": {
            "node": NODE,
            "q": Q,
            "spares": SPARES,
            "points": n_points,
            "repeats": repeats,
            "micro_iterations": micro_iters,
            "cache_disabled": True,
            "sweep": "fig4-style (min_vdd..nominal_vdd)",
        },
        "sweep_s": t_sweep,
        "hook_calls": dict(calls, entry_checksums=checksum_calls),
        "hook_ns_per_call": {
            "active_plan": 1e9 * cost["plan_s"],
            "current_ledger": 1e9 * cost["ledger_s"],
            "entry_checksum": 1e9 * cost["checksum_s"],
        },
        "nan_guard_us_per_batch": 1e6 * guard_s,
        "cache_roundtrip_ms": {
            "put": 1e3 * roundtrip["put_s"],
            "get": 1e3 * roundtrip["get_s"],
        },
        "fault_free_overhead_pct": overhead_pct,
        "max_fault_free_overhead_pct": MAX_FAULT_FREE_OVERHEAD_PCT,
        "passed": overhead_pct < MAX_FAULT_FREE_OVERHEAD_PCT,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output}")

    assert overhead_pct < MAX_FAULT_FREE_OVERHEAD_PCT, (
        f"fault-free resilience overhead {overhead_pct:.3f}% exceeds "
        f"the {MAX_FAULT_FREE_OVERHEAD_PCT}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
