"""Benchmark: regenerate Figure 2 (chain-50 variation vs Vdd, 4 nodes).

Workload: analytic moment sweeps over 11 voltages x 4 technology cards.
"""

import pytest
from conftest import run_once

from repro.devices.paper_anchors import FIG2_POINTS


def test_regenerate_fig2(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig2", False)
    save_report(result)
    data = result.data
    # Shape contract: variation grows toward low Vdd on every node and
    # with technology scaling; the quoted 2.5x 22nm/90nm ratio holds.
    for node in ("90nm", "45nm", "32nm", "22nm"):
        pct = data[node]["pct"]
        assert pct[0] > pct[-1]
    assert data["ratio_22_over_90_at_055"] == pytest.approx(
        FIG2_POINTS["ratio_22_over_90_at_055"], rel=0.2)
