"""Benchmark: regenerate Figure 11 (chain-length averaging study).

Workload: analytic chain statistics over 8 lengths x 4 nodes at 0.55 V.
"""

from conftest import run_once


def test_regenerate_fig11(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig11", False)
    save_report(result)
    data = result.data
    for node in ("90nm", "45nm", "32nm", "22nm"):
        series = data[node]
        # Averaging with diminishing returns.
        assert series[1] > series[10] > series[50] > series[200] > 0
        early_rate = (series[1] - series[10]) / 9
        late_rate = (series[100] - series[200]) / 100
        assert early_rate > 10 * late_rate
