"""Benchmark: regenerate Table 3 (combined design points, 45nm @ 600mV).

Workload: 8 residual-margin solves plus the minimum-power sweep.
"""

from conftest import run_once


def test_regenerate_table3(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "table3", False)
    save_report(result)
    data = result.data
    points = {p["spares"]: p for p in data["points"]}
    # Shape contract: margin falls as spares grow; the power optimum is an
    # interior point cheaper than both pure techniques.
    margins = [points[s]["margin_mv"] for s in sorted(points)]
    assert all(a >= b for a, b in zip(margins, margins[1:]))
    pure_margin_power = points[0]["power"]
    optimum = data["optimum"]
    assert 0 < optimum["spares"] < max(points)
    assert optimum["power"] < pure_margin_power
