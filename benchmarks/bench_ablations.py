"""Benchmark: ablation studies of the design choices DESIGN.md calls out.

Not a paper artifact — these time and sanity-check the extension
analyses: the variation-scale decomposition of the Fig. 4 drop, the
robustness sweeps over the paper's fixed assumptions, and the
cross-topology depth/variation study.
"""

from conftest import run_once

from repro.analysis import (
    chain_length_sweep,
    decompose_performance_drop,
    mitigation_coverage,
    paths_per_lane_sweep,
    signoff_quantile_sweep,
)
from repro.circuits.adders import adder_comparison
from repro.experiments.registry import get_analyzer

VDD = 0.55


def test_variance_decomposition(benchmark):
    analyzer = get_analyzer("90nm")
    rows = run_once(benchmark, decompose_performance_drop, analyzer, VDD)
    by_name = {r.component: r for r in rows}
    # The NTV excess is threshold-driven; flat components cancel.
    assert by_name["threshold (all scales)"].share > 0.9
    assert by_name["multiplicative (all scales)"].contribution < 0.005


def test_mitigation_coverage(benchmark):
    analyzer = get_analyzer("90nm")
    coverage = run_once(benchmark, mitigation_coverage, analyzer, VDD)
    # Structural fact behind Fig. 7: spares fix lane-level slowness far
    # better than die-level slowness; margining fixes both.
    assert (coverage["lane-level"]["duplication"]
            > coverage["die-level"]["duplication"])
    assert coverage["die-level"]["margining"] > 0.5


def test_assumption_sweeps(benchmark):
    def sweep_all():
        return (signoff_quantile_sweep("90nm", VDD),
                paths_per_lane_sweep("90nm", VDD),
                chain_length_sweep("90nm", VDD))

    quantiles, paths, chains = run_once(benchmark, sweep_all)
    # The 90nm "drops stay small" conclusion is robust to every
    # assumption within its swept range.
    for rows in (quantiles, paths, chains):
        for row in rows:
            assert row.performance_drop < 0.12
            assert row.spares is not None          # never saturates


def test_adder_topology_study(benchmark):
    tech = get_analyzer("90nm").tech
    results = run_once(benchmark, adder_comparison, tech, 0.5, 32, 300)
    # Depth averaging across real topologies (Fig. 11's argument).
    assert (results["ripple-carry"]["three_sigma_over_mu"]
            < results["kogge-stone"]["three_sigma_over_mu"])
