"""Benchmark: batched vs scalar deterministic quantile sweeps.

Times a fig4-style sign-off sweep (q = 0.99, no spares, supply points
from the near-threshold floor up to nominal) on every technology card,
once through the scalar ``chip_quantile`` loop and once through the
batched ``chip_quantile_batch`` solver, with the persistent disk cache
disabled so both sides pay their true solve cost.  Results — per-node
timings, speedups and batch-vs-scalar parity — are written to
``BENCH_quantile.json`` at the repository root so the performance
trajectory is tracked across PRs.

Run directly::

    python benchmarks/bench_quantile_batch.py            # full (48 points)
    python benchmarks/bench_quantile_batch.py --smoke    # CI-sized (12)

The headline ``speedup`` / ``parity_rtol`` fields report the paper's
flagship near-threshold node (22 nm).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# The cache must be off before repro is imported anywhere down the line.
os.environ.setdefault("REPRO_CACHE_DISABLE", "1")

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.chip_delay import ChipDelayEngine            # noqa: E402
from repro.devices.technology import (                       # noqa: E402
    available_technologies,
    get_technology,
)

PRIMARY_NODE = "22nm"
Q = 0.99
SPARES = 0.0


def sweep_voltages(tech, n_points: int) -> np.ndarray:
    """A fig4-style supply sweep: NTV floor up to the nominal voltage."""
    return np.linspace(tech.min_vdd, tech.nominal_vdd, n_points)


def bench_node(node: str, n_points: int, repeats: int) -> dict:
    tech = get_technology(node)
    vdds = sweep_voltages(tech, n_points)

    scalar_s = []
    batch_s = []
    scalar = batch = None
    for _ in range(repeats):
        # Fresh engines per repetition: both sides pay their kernel
        # builds, neither inherits the other's LRU state.
        eng = ChipDelayEngine(tech)
        t0 = time.perf_counter()
        scalar = np.array([eng.chip_quantile(v, Q, spares=SPARES)
                           for v in vdds])
        scalar_s.append(time.perf_counter() - t0)

        eng = ChipDelayEngine(tech)
        t0 = time.perf_counter()
        batch = eng.chip_quantile_batch(vdds, Q, SPARES)
        batch_s.append(time.perf_counter() - t0)

    parity = float(np.max(np.abs(batch - scalar) / scalar))
    t_scalar = min(scalar_s)
    t_batch = min(batch_s)
    return {
        "points": int(n_points),
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "speedup": t_scalar / t_batch,
        "parity_rtol": parity,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer sweep points, 1 repeat")
    parser.add_argument("--points", type=int, default=None,
                        help="sweep points per node (default 48, smoke 12)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_quantile.json")
    args = parser.parse_args(argv)

    n_points = args.points or (12 if args.smoke else 48)
    repeats = 1 if args.smoke else 3

    nodes = {}
    for node in available_technologies():
        nodes[node] = bench_node(node, n_points, repeats)
        r = nodes[node]
        print(f"{node:>5}: scalar {1e3 * r['scalar_s']:7.1f} ms   "
              f"batch {1e3 * r['batch_s']:6.1f} ms   "
              f"speedup {r['speedup']:5.2f}x   "
              f"parity {r['parity_rtol']:.1e}")

    primary = nodes[PRIMARY_NODE]
    payload = {
        "benchmark": "quantile_batch",
        "smoke": bool(args.smoke),
        "config": {
            "q": Q,
            "spares": SPARES,
            "points_per_node": n_points,
            "repeats": repeats,
            "sweep": "fig4-style (min_vdd..nominal_vdd)",
            "cache_disabled": True,
        },
        "primary_node": PRIMARY_NODE,
        "speedup": primary["speedup"],
        "parity_rtol": primary["parity_rtol"],
        "scalar_s": primary["scalar_s"],
        "batch_s": primary["batch_s"],
        "nodes": nodes,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output} "
          f"(primary {PRIMARY_NODE}: {primary['speedup']:.2f}x, "
          f"parity {primary['parity_rtol']:.1e})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
