"""Benchmark: regenerate Figure 4 (performance drop vs Vdd, 4 nodes).

Workload: deterministic 99 % chip-delay quantiles over an 11-voltage x
4-node grid (the headline architecture-level result).
"""

import pytest
from conftest import run_once

from repro.devices.paper_anchors import FIG4_PERF_DROP


def test_regenerate_fig4(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig4", False)
    save_report(result)
    data = result.data
    # Shape contract: 90nm stays mild (<10% at 0.5V), 22nm reaches ~18%,
    # every node's drop is monotone in voltage.
    assert data["90nm"][0.5] < 10.0
    assert data["22nm"][0.5] == pytest.approx(
        FIG4_PERF_DROP["22nm"][0.5], rel=0.3)
    for node, rows in data.items():
        voltages = sorted(rows)
        drops = [rows[v] for v in voltages]
        assert all(a >= b for a, b in zip(drops, drops[1:]))
