"""Benchmark: regenerate Table 4 (frequency margining grid).

Workload: 20 designed/variation-aware clock-period pairs with
memory-clock alignment across the four nodes.
"""

from conftest import run_once


def test_regenerate_table4(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "table4", False)
    save_report(result)
    data = result.data
    # Shape contract: Tva > Tclk everywhere; drops grow toward low Vdd and
    # with scaling; alignment can only make the drop worse; advanced nodes
    # approach the ~20% "infeasible" territory the paper flags.
    for node, rows in data.items():
        for vdd, cell in rows.items():
            assert cell["t_va_clk_ns"] > cell["t_clk_ns"]
            assert cell["aligned_drop"] >= cell["drop"] - 1e-12
        assert rows[0.5]["drop"] > rows[0.7]["drop"]
    assert data["22nm"][0.5]["drop"] > 0.12
    assert data["90nm"][0.5]["drop"] < 0.10
