"""Benchmark: kernel execution backends vs the serial numpy baseline.

Times ``MonteCarloEngine.system_delays`` at the paper's fig-4 validation
scale (width=128, paths_per_lane=100, chain_length=50) on the flagship
near-threshold node (22 nm), once per available backend:

* ``numpy``    — serial fused baseline (the reference for every gate).
* ``threaded`` — independent kernel blocks fanned across a shared thread
  pool; **must** stay bit-identical to the baseline in both precisions.
* ``numba`` / ``cupy`` — optional accelerators, benchmarked only when
  importable; parity is rtol-gated (different reduction orders).

A compose pass re-runs the workload through ``ParallelSampler`` with
``jobs=2`` + the threaded backend and checks it is bit-identical to the
``jobs=1`` numpy run at the same ``(root_seed, shard_size)`` — threads
inside each worker must not perturb the process-sharded draws.

Results go to ``BENCH_backend.json`` at the repository root.  The >= 3x
threaded speedup target is recorded always but *enforced* (non-zero
exit) only on boxes with >= 8 cores: thread-level speedup is physically
unobservable on the 1-2 core CI runners, while parity and compose gates
are machine-independent and always enforced.

Run directly::

    python benchmarks/bench_backends.py            # full (32 chips)
    python benchmarks/bench_backends.py --smoke    # CI-sized (8)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings
from pathlib import Path

# The cache must be off before repro is imported anywhere down the line.
os.environ.setdefault("REPRO_CACHE_DISABLE", "1")

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.backends import backend_manifest, get_backend  # noqa: E402
from repro.core.montecarlo import MonteCarloEngine             # noqa: E402
from repro.devices.technology import get_technology            # noqa: E402
from repro.errors import BackendUnavailableError               # noqa: E402
from repro.runtime.parallel import ParallelSampler             # noqa: E402

PRIMARY_NODE = "22nm"
VDD = 0.6
WIDTH = 128
PATHS_PER_LANE = 100
CHAIN_LENGTH = 50
SEED = 0

SPEEDUP_TARGET = 3.0
SPEEDUP_MIN_CORES = 8
OPTIONAL_RTOL = 1e-9


def _run(tech, backend, *, n_chips: int, batch_size: int,
         precision: str = "float64") -> tuple:
    """One timed ``system_delays`` pass; returns (seconds, samples)."""
    engine = MonteCarloEngine(tech, seed=SEED, precision=precision,
                              backend=backend)
    t0 = time.perf_counter()
    out = engine.system_delays(VDD, width=WIDTH,
                               paths_per_lane=PATHS_PER_LANE,
                               chain_length=CHAIN_LENGTH, n_chips=n_chips,
                               batch_size=batch_size)
    return time.perf_counter() - t0, out


def _optional_backend(name: str):
    """The backend instance, or ``None`` when its dependency is absent."""
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return get_backend(name)
    except BackendUnavailableError:
        return None


def bench_backend(tech, backend, baseline: dict, *, n_chips: int,
                  batch_size: int, repeats: int) -> dict:
    """Time one backend in both precisions and grade parity vs numpy."""
    secs, f32_secs = [], []
    out = None
    for _ in range(repeats):
        t, out = _run(tech, backend, n_chips=n_chips, batch_size=batch_size)
        secs.append(t)
        t, _ = _run(tech, backend, n_chips=n_chips, batch_size=batch_size,
                    precision="float32")
        f32_secs.append(t)

    ref = baseline["out"]
    bit_identical = bool(np.array_equal(out, ref))
    rel = float(np.max(np.abs(out - ref) / ref)) if not bit_identical else 0.0
    t_best = min(secs)
    return {
        "seconds": t_best,
        "seconds_f32": min(f32_secs),
        "speedup": baseline["seconds"] / t_best,
        "bit_identical": bit_identical,
        "parity_rtol": rel,
    }


def compose_check(n_chips: int) -> bool:
    """jobs=2 + threaded backend must match jobs=1 + numpy bit-for-bit."""
    tech = get_technology(PRIMARY_NODE)
    kwargs = dict(width=WIDTH, paths_per_lane=PATHS_PER_LANE,
                  chain_length=CHAIN_LENGTH, n_chips=n_chips, root_seed=SEED)
    serial = ParallelSampler(1, shard_size=4).system_delays(
        tech, VDD, backend="numpy", **kwargs)
    sharded = ParallelSampler(2, shard_size=4).system_delays(
        tech, VDD, backend="threaded", **kwargs)
    return bool(np.array_equal(serial, sharded))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer chips, 1 repeat")
    parser.add_argument("--chips", type=int, default=None,
                        help="chips (default 32, smoke 8)")
    parser.add_argument("--threads", type=int, default=None,
                        help="threads for the threaded backend "
                             "(default: cpu count)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_backend.json")
    args = parser.parse_args(argv)

    n_chips = args.chips or (8 if args.smoke else 32)
    batch_size = min(n_chips, 8 if args.smoke else 32)
    repeats = 1 if args.smoke else 2
    cores = os.cpu_count() or 1
    tech = get_technology(PRIMARY_NODE)

    # Serial fused numpy baseline — every other backend is graded off it.
    base_secs = []
    base_out = None
    for _ in range(repeats):
        t, base_out = _run(tech, "numpy", n_chips=n_chips,
                           batch_size=batch_size)
        base_secs.append(t)
    baseline = {"seconds": min(base_secs), "out": base_out}
    print(f"numpy   : {1e3 * baseline['seconds']:8.1f} ms   (baseline)")

    backends = {"numpy": {
        "seconds": baseline["seconds"],
        "speedup": 1.0,
        "bit_identical": True,
        "parity_rtol": 0.0,
    }}

    threaded = get_backend("threaded", threads=args.threads)
    backends["threaded"] = bench_backend(
        tech, threaded, baseline, n_chips=n_chips, batch_size=batch_size,
        repeats=repeats)
    backends["threaded"]["threads"] = threaded.threads

    for name in ("numba", "cupy"):
        instance = _optional_backend(name)
        if instance is None:
            backends[name] = {"available": False}
            print(f"{name:<8}: unavailable (dependency not installed)")
            continue
        r = bench_backend(tech, instance, baseline, n_chips=n_chips,
                          batch_size=batch_size, repeats=repeats)
        r["available"] = True
        backends[name] = r

    parity_failed = not backends["threaded"]["bit_identical"]
    for name in ("numba", "cupy"):
        r = backends[name]
        if r.get("available") and not r["bit_identical"]:
            if r["parity_rtol"] > OPTIONAL_RTOL:
                parity_failed = True

    for name, r in backends.items():
        if name == "numpy" or not r.get("seconds"):
            continue
        grade = ("bit-identical" if r["bit_identical"] else
                 f"rtol {r['parity_rtol']:.2e}")
        print(f"{name:<8}: {1e3 * r['seconds']:8.1f} ms   "
              f"speedup {r['speedup']:5.2f}x   {grade}")

    compose_ok = compose_check(n_chips)
    print(f"compose : jobs=2 threaded vs jobs=1 numpy -> "
          f"{'bit-identical' if compose_ok else 'MISMATCH'}")

    gate_enforced = cores >= SPEEDUP_MIN_CORES
    gate_met = backends["threaded"]["speedup"] >= SPEEDUP_TARGET
    payload = {
        "benchmark": "kernel_backends",
        "smoke": bool(args.smoke),
        "config": {
            "node": PRIMARY_NODE,
            "vdd": VDD,
            "width": WIDTH,
            "paths_per_lane": PATHS_PER_LANE,
            "chain_length": CHAIN_LENGTH,
            "n_chips": n_chips,
            "batch_size": batch_size,
            "repeats": repeats,
            "seed": SEED,
            "cache_disabled": True,
        },
        "cores": cores,
        "threads": threaded.threads,
        "speedup": backends["threaded"]["speedup"],
        "bit_identical": backends["threaded"]["bit_identical"],
        "compose_jobs2_bit_identical": compose_ok,
        "speedup_gate": {
            "target": SPEEDUP_TARGET,
            "min_cores": SPEEDUP_MIN_CORES,
            "enforced": gate_enforced,
            "met": gate_met,
        },
        "manifest": backend_manifest("threaded", threads=args.threads),
        "backends": backends,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output} "
          f"(threaded {backends['threaded']['speedup']:.2f}x on "
          f"{cores} core{'s' if cores != 1 else ''})")

    if parity_failed:
        print("ERROR: backend parity gate failed", file=sys.stderr)
        return 1
    if not compose_ok:
        print("ERROR: threaded backend perturbs process-sharded draws",
              file=sys.stderr)
        return 1
    if gate_enforced and not gate_met:
        print(f"ERROR: threaded speedup "
              f"{backends['threaded']['speedup']:.2f}x below "
              f"{SPEEDUP_TARGET:.1f}x target on {cores} cores",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
