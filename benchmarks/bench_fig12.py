"""Benchmark: regenerate Figure 12 / Appendix D (spare placement study).

Workload: Monte-Carlo repair-yield estimation (5 policies x 6000 chips)
plus the XRAM bypass demonstration.
"""

from conftest import run_once


def test_regenerate_fig12(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig12", False)
    save_report(result)
    policies = result.data["policies"]
    # Shape contract: global sparing dominates every local policy.
    global_yield = policies[0]["yield"]
    assert policies[0]["cluster_size"] is None
    assert all(global_yield >= p["yield"] for p in policies[1:])
    # Paper Fig. 12(c) bypass mapping reproduced exactly.
    assert result.data["demo_mapping"] == [0, 1, 4, 5, 6, 7, 8, 9]
