"""Benchmark: regenerate Figure 10 / Appendix B (the Diet SODA PE
inventory and voltage-domain breakdown).

Workload: trivial (structural data), but kept for artifact completeness —
every figure/table of the paper has a bench target.
"""

import pytest
from conftest import run_once


def test_regenerate_fig10(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig10", False)
    save_report(result)
    data = result.data
    # The reconstruction must carry the three constants every overhead
    # number in Tables 1-3 relies on.
    assert data["dv_power_fraction"] == pytest.approx(0.43)
    assert 100 * data["area_per_spare"] == pytest.approx(57.8 / 128,
                                                         rel=1e-6)
    assert data["modules"]["xram-shuffle-network"]["power"] == pytest.approx(
        0.137)
