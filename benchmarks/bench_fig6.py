"""Benchmark: regenerate Figure 6 (voltage-margining distributions).

Workload: nine 10,000-sample ensembles (5 supply steps + 4 spare
configurations) plus the deterministic margin solve at 600 mV, 45 nm.
"""

from conftest import run_once


def test_regenerate_fig6(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig6", False)
    save_report(result)
    data = result.data
    margins = data["margin_p99_ns"]
    # Shape contract: delay falls with each 5 mV step; the design point
    # itself misses the target, some step within 20 mV meets it.
    steps = sorted(margins)
    vals = [margins[s] for s in steps]
    assert all(a > b for a, b in zip(vals, vals[1:]))
    assert margins[0] > data["target_ns"]
    assert vals[-1] <= data["target_ns"]
    assert data["margin_mv"] is not None and 1 < data["margin_mv"] < 25
