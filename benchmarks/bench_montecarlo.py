"""Benchmark: fused Monte-Carlo kernels vs the naive reference engine.

Times ``MonteCarloEngine.system_delays`` at the paper's fig-4 validation
scale (width=128, paths_per_lane=100, chain_length=50) on every
technology card, once through the fused zero-allocation kernel path and
once through the reference path (``fused=False`` — identical draws, but
the pre-kernel allocate-per-temporary evaluation through
``TechnologyNode.fo4_delay``), plus the float32 dtype-policy variant.  A
separate pass measures tracemalloc peak memory for both paths.  Results
— per-node timings, speedups, peak-memory ratios and fused-vs-reference
parity — are written to ``BENCH_mc.json`` at the repository root so the
performance trajectory is tracked across PRs.

The float64 fused path must be **bit-identical** to the reference path;
the process exits non-zero on any parity drift (CI gates on this).

Run directly::

    python benchmarks/bench_montecarlo.py            # full (32 chips/node)
    python benchmarks/bench_montecarlo.py --smoke    # CI-sized (8)

The headline ``speedup`` / ``mem_ratio`` fields report the paper's
flagship near-threshold node (22 nm).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

# The cache must be off before repro is imported anywhere down the line.
os.environ.setdefault("REPRO_CACHE_DISABLE", "1")

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.montecarlo import MonteCarloEngine          # noqa: E402
from repro.devices.technology import (                      # noqa: E402
    available_technologies,
    get_technology,
)

PRIMARY_NODE = "22nm"
VDD = 0.6
WIDTH = 128
PATHS_PER_LANE = 100
CHAIN_LENGTH = 50
SEED = 0


def _run(tech, *, n_chips: int, batch_size: int, fused: bool,
         precision: str = "float64") -> tuple:
    """One timed ``system_delays`` pass; returns (seconds, samples)."""
    engine = MonteCarloEngine(tech, seed=SEED, precision=precision,
                              fused=fused)
    t0 = time.perf_counter()
    out = engine.system_delays(VDD, width=WIDTH,
                               paths_per_lane=PATHS_PER_LANE,
                               chain_length=CHAIN_LENGTH, n_chips=n_chips,
                               batch_size=batch_size)
    return time.perf_counter() - t0, out


def _peak_mem(tech, *, n_chips: int, batch_size: int, fused: bool) -> int:
    """tracemalloc peak (bytes) of one ``system_delays`` pass."""
    tracemalloc.start()
    try:
        _run(tech, n_chips=n_chips, batch_size=batch_size, fused=fused)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def bench_node(node: str, n_chips: int, batch_size: int,
               repeats: int) -> dict:
    tech = get_technology(node)
    gate_evals = n_chips * WIDTH * PATHS_PER_LANE * CHAIN_LENGTH

    fused_s, ref_s, f32_s = [], [], []
    fused_out = ref_out = None
    for _ in range(repeats):
        t, ref_out = _run(tech, n_chips=n_chips, batch_size=batch_size,
                          fused=False)
        ref_s.append(t)
        t, fused_out = _run(tech, n_chips=n_chips, batch_size=batch_size,
                            fused=True)
        fused_s.append(t)
        t, _ = _run(tech, n_chips=n_chips, batch_size=batch_size,
                    fused=True, precision="float32")
        f32_s.append(t)

    bit_identical = bool(np.array_equal(fused_out, ref_out))
    parity = (0.0 if bit_identical else
              float(np.max(np.abs(fused_out - ref_out) / ref_out)))

    # Memory pass runs separately: tracemalloc's allocation hooks slow
    # the hot loop, so peaks never contaminate the timings.
    mem_chips = min(n_chips, batch_size)
    peak_ref = _peak_mem(tech, n_chips=mem_chips, batch_size=batch_size,
                         fused=False)
    peak_fused = _peak_mem(tech, n_chips=mem_chips, batch_size=batch_size,
                           fused=True)

    t_ref, t_fused, t_f32 = min(ref_s), min(fused_s), min(f32_s)
    return {
        "n_chips": int(n_chips),
        "batch_size": int(batch_size),
        "gate_evals": int(gate_evals),
        "reference_s": t_ref,
        "fused_s": t_fused,
        "fused_f32_s": t_f32,
        "speedup": t_ref / t_fused,
        "speedup_f32": t_ref / t_f32,
        "throughput_evals_per_s": gate_evals / t_fused,
        "peak_mem_reference_mb": peak_ref / 2 ** 20,
        "peak_mem_fused_mb": peak_fused / 2 ** 20,
        "mem_ratio": peak_ref / peak_fused,
        "bit_identical": bit_identical,
        "parity_rtol": parity,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer chips, 1 repeat")
    parser.add_argument("--chips", type=int, default=None,
                        help="chips per node (default 32, smoke 8)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_mc.json")
    args = parser.parse_args(argv)

    n_chips = args.chips or (8 if args.smoke else 32)
    batch_size = min(n_chips, 8 if args.smoke else 32)
    repeats = 1 if args.smoke else 2

    nodes = {}
    drift = False
    for node in available_technologies():
        nodes[node] = bench_node(node, n_chips, batch_size, repeats)
        r = nodes[node]
        drift = drift or not r["bit_identical"]
        print(f"{node:>5}: reference {1e3 * r['reference_s']:8.1f} ms   "
              f"fused {1e3 * r['fused_s']:7.1f} ms   "
              f"speedup {r['speedup']:5.2f}x (f32 {r['speedup_f32']:5.2f}x)  "
              f"mem {r['peak_mem_reference_mb']:6.1f} -> "
              f"{r['peak_mem_fused_mb']:6.1f} MB "
              f"({r['mem_ratio']:.2f}x)   "
              f"{'bit-identical' if r['bit_identical'] else 'PARITY DRIFT'}")

    primary = nodes[PRIMARY_NODE]
    payload = {
        "benchmark": "montecarlo_kernels",
        "smoke": bool(args.smoke),
        "config": {
            "vdd": VDD,
            "width": WIDTH,
            "paths_per_lane": PATHS_PER_LANE,
            "chain_length": CHAIN_LENGTH,
            "chips_per_node": n_chips,
            "batch_size": batch_size,
            "repeats": repeats,
            "seed": SEED,
            "cache_disabled": True,
        },
        "primary_node": PRIMARY_NODE,
        "speedup": primary["speedup"],
        "speedup_f32": primary["speedup_f32"],
        "mem_ratio": primary["mem_ratio"],
        "bit_identical": all(r["bit_identical"] for r in nodes.values()),
        "nodes": nodes,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output} "
          f"(primary {PRIMARY_NODE}: {primary['speedup']:.2f}x fused, "
          f"{primary['mem_ratio']:.2f}x lower peak memory)")
    if drift:
        print("ERROR: fused/reference float64 parity drift detected",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
