"""Benchmark: regenerate Figure 3 (path / 1-wide / 128-wide distributions).

Workload: six 10,000-sample architecture-level ensembles on 90 nm.
"""

from conftest import run_once


def test_regenerate_fig3(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig3", False)
    save_report(result)
    means = dict(zip(result.data["labels"], result.data["mean_fo4"]))
    # Shape contract: compounding max effects and the NTV rightward drift.
    assert (means["critical-path@1V"] < means["1-wide@1V"]
            < means["128-wide@1V"])
    assert (means["128-wide@1V"] < means["128-wide@0.6V"]
            < means["128-wide@0.55V"] < means["128-wide@0.5V"])
