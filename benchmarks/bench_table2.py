"""Benchmark: regenerate Table 2 (voltage margins + overheads grid).

Workload: 20 deterministic Brent margin searches at full 128-wide scale,
each to 10 uV tolerance.
"""

from conftest import run_once

from repro.devices.paper_anchors import TABLE2


def test_regenerate_table2(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "table2", False)
    save_report(result)
    data = result.data
    for node, rows in TABLE2.items():
        for vdd, entry in rows.items():
            cell = data[node][vdd]
            assert cell["feasible"]
            # Within 50 % of the paper's margin in every cell.
            assert abs(cell["margin_mv"] - entry.margin_mv) \
                <= 0.5 * entry.margin_mv
    # 90nm needs millivolts; the advanced nodes need tens of millivolts.
    assert data["90nm"][0.5]["margin_mv"] < 8
    assert data["45nm"][0.5]["margin_mv"] > 12
