"""Benchmark: regenerate Figure 8 (chip delay vs spares at 600-620 mV).

Workload: a 8x5 grid of deterministic 99 % chip-delay quantiles (45 nm).
"""

from conftest import run_once


def test_regenerate_fig8(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig8", False)
    save_report(result)
    grid = result.data["grid"]
    target = result.data["target_ns"]
    # Shape contract: combined interior points are feasible (the paper
    # reads off (2, +10mV); our calibration lands within one grid step at
    # (4, +10mV) / (1, +15mV)).
    assert grid[(4, 10)] <= target
    assert grid[(1, 15)] <= target
    # Neither technique alone at tiny budget suffices.
    assert grid[(0, 0)] > target
    assert grid[(1, 0)] > target
    assert grid[(0, 5)] > target
    # The grid is monotone in both knobs.
    assert grid[(0, 0)] > grid[(0, 20)] and grid[(0, 0)] > grid[(32, 0)]
