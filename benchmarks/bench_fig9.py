"""Benchmark: regenerate Figure 9 (energy/delay operating regions).

Workload: energy sweep + bounded minimisation on the 90 nm card.
"""

from conftest import run_once


def test_regenerate_fig9(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig9", False)
    save_report(result)
    data = result.data
    sub_near, near_super = data["boundaries"]
    # Shape contract: three ordered regions, the energy minimum at/below
    # the sub/near boundary, energy falling from nominal into NTV.
    assert 0 < sub_near < near_super
    assert data["v_min"] <= sub_near + 0.05
    by_vdd = dict(zip(data["vdd"], data["total"]))
    assert by_vdd[1.0] > by_vdd[0.5] > min(data["total"])
    # Delay rises monotonically as voltage falls.
    delays = list(zip(data["vdd"], data["delay"]))
    delays.sort()
    values = [d for _, d in delays]
    assert all(a >= b for a, b in zip(values, values[1:]))
