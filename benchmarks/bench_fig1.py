"""Benchmark: regenerate Figure 1 (single-inverter vs chain histograms).

Workload: 2 x 6 Monte-Carlo ensembles (1000 samples x up to 50 gates) on
the 90 nm card.
"""

import pytest
from conftest import run_once

from repro.devices.paper_anchors import FIG1_CHAIN50_3SIGMA


def test_regenerate_fig1(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig1", False)
    save_report(result)
    data = result.data
    # Shape contract: chain averaging at every voltage, NTV blow-up at 0.5V.
    for single, chain in zip(data["single"], data["chain"]):
        assert single > 2 * chain
    chain_by_vdd = dict(zip(data["vdd"], data["chain"]))
    assert chain_by_vdd[0.5] > chain_by_vdd[1.0] * 1.3
    assert chain_by_vdd[0.5] == pytest.approx(
        FIG1_CHAIN50_3SIGMA[0.5], rel=0.15)
