"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact (figure or table),
measures the regeneration time with pytest-benchmark, saves the rendered
report under ``benchmarks/_output/`` and asserts the artifact's headline
shape facts.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import run_experiment

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"


@pytest.fixture(scope="session")
def save_report():
    """Persist an experiment's rendered report next to the benchmarks."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(result):
        path = OUTPUT_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def regenerate():
    """Callable running one experiment (fast mode keeps CI times sane)."""

    def _run(experiment_id: str, fast: bool = True):
        return run_experiment(experiment_id, fast=fast)

    return _run


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive artifact regeneration exactly once."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
