"""Benchmark: coalesced serving throughput vs serial per-request dispatch.

Launches the real sign-off server (``python -m repro.experiments serve``)
twice as a subprocess — once with coalescing disabled (``--max-batch 1
--batch-window-ms 0``: every point is its own dispatch, the "one query,
one solve" baseline) and once with the micro-batching dispatcher doing
its job (``--max-batch 64 --batch-window-ms 5``) — and drives each with
32 concurrent client threads issuing a mixed single/batch workload of
unique sweep points over keep-alive HTTP connections.

Three things are checked, mirroring the serving layer's contract:

* **parity** — every value returned (via ``values_hex``) is bit-identical
  to a direct in-process ``chip_quantile_batch(..., cluster=False)``;
* **coalescing** — the ``serve.batch_size`` histogram shows multi-point
  batches in the coalesced phase;
* **throughput** — in full mode, coalesced points/s must be >= 3x the
  serial phase.

Each phase gets a fresh ``REPRO_CACHE_DIR`` so neither inherits the
other's persistent quantile cache, and the coalesced phase's run
manifest (``--metrics``) is parsed to confirm the ``serve.coalesce_ratio``
/ ``serve.latency_p99_ms`` gauges land in provenance output.  Results go
to ``BENCH_serve.json`` at the repository root.

An **overload** section then offers far more load than the server can
absorb (unpaced clients against a small queue and a tight request
deadline) twice: once with admission control disabled (``--no-shed``:
the hard max-queue-429 baseline, where admitted-but-doomed requests
burn a queue slot and solver time before 408ing) and once with adaptive
shedding on.  Under shedding, goodput (successfully served points/s)
and the served-request p99 (the ``serve.latency_p99_ms`` gauge, which
excludes 429/503 rejections by construction) must not degrade versus
the baseline — enforced in full mode, recorded always.

Run directly::

    python benchmarks/bench_serve.py            # full (8 requests/client)
    python benchmarks/bench_serve.py --smoke    # CI-sized (2 requests/client)
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.chip_delay import ChipDelayEngine            # noqa: E402
from repro.devices.technology import get_technology          # noqa: E402
from repro.serve.client import ServeClient                   # noqa: E402

NODE = "22nm"
ARCH = {"width": 16, "paths_per_lane": 25, "chain_length": 30}
Q = 0.99
SPARES = 0.0
CLIENTS = 32

SERIAL_ARGS = ["--max-batch", "1", "--batch-window-ms", "0"]
COALESCED_ARGS = ["--max-batch", "64", "--batch-window-ms", "5"]

#: Overload section: a deliberately small queue and tight deadline so
#: unpaced clients offer far more than the server can absorb.  Each
#: request carries ``OVERLOAD_REQ_POINTS`` cold points, so 16 clients
#: offer up to 128 points against a 32-point queue whose drain time
#: alone exceeds the 80 ms request deadline.
OVERLOAD_CLIENTS = 16
OVERLOAD_REQ_POINTS = 8
OVERLOAD_COMMON = ["--max-batch", "8", "--batch-window-ms", "2",
                   "--max-queue", "32", "--deadline-ms", "80"]
OVERLOAD_HARD_ARGS = [*OVERLOAD_COMMON, "--no-shed"]
OVERLOAD_ADAPTIVE_ARGS = list(OVERLOAD_COMMON)

_LISTEN_RE = re.compile(r"\[serve\] listening on ([\d.]+):(\d+)")


class ServerProc:
    """A ``repro.experiments serve`` subprocess with its own cache dir."""

    def __init__(self, extra_args, manifest_path: str, cache_dir: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_CACHE_DIR"] = cache_dir
        env.pop("REPRO_CACHE_DISABLE", None)
        # Telemetry fully on: the parity gate below must hold with the
        # tracer and the flight recorder live, not just on a dark server.
        cmd = [sys.executable, "-m", "repro.experiments", "serve",
               "--port", "0", "--metrics", manifest_path,
               "--trace", manifest_path + ".trace.json", *extra_args]
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO_ROOT))
        self.lines: list = []
        self.port = None
        self._ready = threading.Event()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        if not self._ready.wait(timeout=120):
            self.proc.kill()
            raise RuntimeError("server did not announce its port:\n"
                               + "".join(self.lines))

    def _drain(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line)
            m = _LISTEN_RE.search(line)
            if m:
                self.port = int(m.group(2))
                self._ready.set()
        self._ready.set()  # EOF before announce -> wake the waiter

    def stop(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        rc = self.proc.wait(timeout=120)
        self._reader.join(timeout=10)
        return rc


def make_workload(requests_per_client: int):
    """Per-client request lists of unique (batch-of-1 / batch-of-3) vdds."""
    total_points = 0
    shapes = []
    for c in range(CLIENTS):
        row = [1 if (c + r) % 2 == 0 else 3
               for r in range(requests_per_client)]
        shapes.append(row)
        total_points += sum(row)
    # Unique, pre-rounded to the protocol's 9-decimal key so the direct
    # baseline solves byte-for-byte the same points the server sees.
    grid = np.round(np.linspace(0.45, 0.95, total_points), 9)
    it = iter(grid.tolist())
    workload = [[[next(it) for _ in range(n)] for n in row]
                for row in shapes]
    return workload, grid


def run_phase(label: str, extra_args, workload) -> dict:
    cache_dir = tempfile.mkdtemp(prefix=f"bench-serve-{label}-cache-")
    manifest_path = os.path.join(
        tempfile.mkdtemp(prefix=f"bench-serve-{label}-"), "manifest.json")
    server = ServerProc(extra_args, manifest_path, cache_dir)
    results = [None] * CLIENTS
    errors: list = []
    barrier = threading.Barrier(CLIENTS + 1)

    def client_main(idx: int) -> None:
        try:
            with ServeClient("127.0.0.1", server.port, timeout=300) as cl:
                barrier.wait()
                out = []
                for vdds in workload[idx]:
                    point = vdds[0] if len(vdds) == 1 else vdds
                    resp = cl.query(NODE, point, q=Q, spares=SPARES, **ARCH)
                    out.append((vdds, resp["values_hex"]))
                results[idx] = out
        except Exception as exc:  # surfaced after join
            errors.append((idx, exc))
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=client_main, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        server.stop()
        raise RuntimeError(f"{label}: client errors: {errors!r}")

    with ServeClient("127.0.0.1", server.port, timeout=60) as cl:
        metrics = cl.metrics()
    rc = server.stop()
    if rc != 0:
        raise RuntimeError(f"{label}: server exited {rc}:\n"
                           + "".join(server.lines))
    manifest = json.loads(Path(manifest_path).read_text(encoding="utf-8"))

    points = sum(len(v) for out in results for v, _ in out)
    values = {}
    for out in results:
        for vdds, hexes in out:
            for v, h in zip(vdds, hexes):
                values[v] = float.fromhex(h)
    hist = metrics["histograms"]["serve.batch_size"]
    return {
        "elapsed_s": elapsed,
        "points": points,
        "requests": sum(len(out) for out in results),
        "throughput_pts_per_s": points / elapsed,
        "batch_size_counts": hist["counts"],
        "max_batch_observed": max(
            (b for b, n in zip(hist["buckets"], hist["counts"]) if n),
            default=0),
        "coalesce_ratio": metrics["gauges"].get("serve.coalesce_ratio"),
        "latency_p50_ms": metrics["gauges"].get("serve.latency_p50_ms"),
        "latency_p99_ms": metrics["gauges"].get("serve.latency_p99_ms"),
        "manifest_gauges": {
            k: v for k, v in manifest["metrics"]["gauges"].items()
            if k.startswith("serve.")},
        "values": values,
    }


def run_overload_phase(label: str, extra_args, grid,
                       duration_s: float) -> dict:
    """Unpaced clients vs a saturated server for a fixed wall duration.

    Each client owns a backlog of unique 8-point chunks and offers them
    back-to-back with no think time.  2xx -> goodput; 429 (overloaded /
    shed / degraded) -> the chunk goes to the back of the backlog and
    is offered again (its points are still cold, so re-offering is
    fair); 408 -> the chunk is dropped (the server solved and memoised
    it for a waiter that already gave up — the baseline's wasted work).
    Anything else is a real error.
    """
    from collections import deque

    from repro.serve.client import ServeRequestError
    cache_dir = tempfile.mkdtemp(prefix=f"bench-serve-{label}-cache-")
    manifest_path = os.path.join(
        tempfile.mkdtemp(prefix=f"bench-serve-{label}-"), "manifest.json")
    server = ServerProc(extra_args, manifest_path, cache_dir)
    per_client = len(grid) // OVERLOAD_CLIENTS
    tallies = [None] * OVERLOAD_CLIENTS
    errors: list = []
    barrier = threading.Barrier(OVERLOAD_CLIENTS + 1)

    def client_main(idx: int) -> None:
        mine = grid[idx * per_client:(idx + 1) * per_client]
        backlog = deque(mine[i:i + OVERLOAD_REQ_POINTS]
                        for i in range(0, len(mine), OVERLOAD_REQ_POINTS))
        tally = {"served": 0, "rejected": 0, "deadline": 0,
                 "reject_codes": {}}
        try:
            with ServeClient("127.0.0.1", server.port, timeout=300) as cl:
                barrier.wait()
                t_end = time.perf_counter() + duration_s
                while backlog and time.perf_counter() < t_end:
                    chunk = backlog.popleft()
                    try:
                        cl.query(NODE, [float(v) for v in chunk],
                                 q=Q, spares=SPARES, **ARCH)
                        tally["served"] += len(chunk)
                    except ServeRequestError as exc:
                        if exc.status == 429:
                            tally["rejected"] += len(chunk)
                            tally["reject_codes"][exc.code] = (
                                tally["reject_codes"].get(exc.code, 0) + 1)
                            backlog.append(chunk)
                        elif exc.status == 408:
                            tally["deadline"] += len(chunk)
                        else:
                            raise
            tallies[idx] = tally
        except Exception as exc:  # surfaced after join
            errors.append((idx, exc))
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=client_main, args=(i,))
               for i in range(OVERLOAD_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        server.stop()
        raise RuntimeError(f"{label}: client errors: {errors!r}")
    with ServeClient("127.0.0.1", server.port, timeout=60) as cl:
        # abandoned (408'd) batches may still be draining; give the
        # queue a moment before declaring it wedged
        deadline = time.perf_counter() + 15.0
        while True:
            health = cl.health()
            if not health["queued"] or time.perf_counter() > deadline:
                break
            time.sleep(0.1)
        metrics = cl.metrics()
    rc = server.stop()
    if rc != 0:
        raise RuntimeError(f"{label}: server exited {rc}:\n"
                           + "".join(server.lines))
    if health["queued"]:
        raise RuntimeError(f"{label}: queue wedged with "
                           f"{health['queued']} points after the run")

    served = sum(t["served"] for t in tallies)
    rejected = sum(t["rejected"] for t in tallies)
    deadline = sum(t["deadline"] for t in tallies)
    reject_codes: dict = {}
    for t in tallies:
        for code, n in t["reject_codes"].items():
            reject_codes[code] = reject_codes.get(code, 0) + n
    counters = metrics["counters"]
    return {
        "elapsed_s": elapsed,
        "offered": served + rejected + deadline,
        "served": served,
        "rejected_429": rejected,
        "reject_codes": reject_codes,
        "deadline_408": deadline,
        "goodput_pts_per_s": served / elapsed,
        "served_latency_p99_ms": metrics["gauges"].get(
            "serve.latency_p99_ms"),
        "shed_responses": counters.get("serve.shed.responses", 0),
        "shed_deadline": counters.get("serve.shed.deadline", 0),
        "shed_degraded": counters.get("serve.shed.degraded", 0),
        "shed_latency_count": metrics["histograms"].get(
            "serve.shed_latency_ms", {}).get("count", 0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 2 requests/client, no "
                             "throughput-floor assertion")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 8, smoke 2)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_serve.json")
    args = parser.parse_args(argv)

    requests_per_client = args.requests or (2 if args.smoke else 8)
    workload, grid = make_workload(requests_per_client)
    print(f"{CLIENTS} clients x {requests_per_client} requests "
          f"({len(grid)} unique points, arch {ARCH})")

    phases = {}
    for label, extra in (("serial", SERIAL_ARGS),
                         ("coalesced", COALESCED_ARGS)):
        phases[label] = run_phase(label, extra, workload)
        r = phases[label]
        print(f"{label:>9}: {r['elapsed_s']:6.2f} s   "
              f"{r['throughput_pts_per_s']:7.1f} pts/s   "
              f"max batch {r['max_batch_observed']:.0f}   "
              f"coalesce ratio {r['coalesce_ratio']:.2f}   "
              f"p99 {r['latency_p99_ms']:.0f} ms")

    # Parity: every served value must be bit-identical to a direct
    # in-process invariant batch solve of the same points.
    engine = ChipDelayEngine(get_technology(NODE), **ARCH)
    direct = engine.chip_quantile_batch(grid, Q, SPARES, cluster=False)
    mismatches = 0
    for phase in phases.values():
        for v, expect in zip(grid.tolist(), direct.tolist()):
            if phase["values"][v] != expect:
                mismatches += 1
        del phase["values"]  # not serialised
    if mismatches:
        raise SystemExit(f"parity FAILED: {mismatches} served values "
                         f"differ from the direct batch solve")
    print(f"parity: all {2 * len(grid)} served values bit-identical "
          f"to direct chip_quantile_batch")

    coalesced = phases["coalesced"]
    if coalesced["max_batch_observed"] <= 1:
        raise SystemExit("coalescing FAILED: serve.batch_size never "
                         "exceeded 1 in the coalesced phase")
    for gauge in ("serve.coalesce_ratio", "serve.latency_p99_ms"):
        if gauge not in coalesced["manifest_gauges"]:
            raise SystemExit(f"manifest missing {gauge}")
    speedup = (coalesced["throughput_pts_per_s"]
               / phases["serial"]["throughput_pts_per_s"])
    if not args.smoke and speedup < 3.0:
        raise SystemExit(f"throughput FAILED: coalesced/serial = "
                         f"{speedup:.2f}x < 3.0x")

    # -- overload: adaptive shedding vs the hard-429 baseline ----------------
    overload_duration = 1.5 if args.smoke else 4.0
    overload_per_client = OVERLOAD_REQ_POINTS * (20 if args.smoke else 60)
    overload_grid = np.round(np.linspace(
        0.45, 0.95, OVERLOAD_CLIENTS * overload_per_client), 9).tolist()
    print(f"\noverload: {OVERLOAD_CLIENTS} unpaced clients, "
          f"{OVERLOAD_REQ_POINTS}-point requests for "
          f"{overload_duration:g} s, queue 32, deadline 80 ms")
    overload = {}
    for label, extra in (("hard", OVERLOAD_HARD_ARGS),
                         ("adaptive", OVERLOAD_ADAPTIVE_ARGS)):
        overload[label] = run_overload_phase(
            f"overload-{label}", extra, overload_grid, overload_duration)
        r = overload[label]
        p99 = r["served_latency_p99_ms"]
        print(f"{label:>9}: goodput {r['goodput_pts_per_s']:7.1f} pts/s   "
              f"served {r['served']}/{r['offered']}   "
              f"429s {r['rejected_429']}   408s {r['deadline_408']}   "
              f"served p99 {p99 if p99 is None else round(p99):} ms")

    goodput_ratio = (overload["adaptive"]["goodput_pts_per_s"]
                     / overload["hard"]["goodput_pts_per_s"])
    hard_p99 = overload["hard"]["served_latency_p99_ms"]
    adaptive_p99 = overload["adaptive"]["served_latency_p99_ms"]
    p99_ratio = (adaptive_p99 / hard_p99
                 if adaptive_p99 and hard_p99 else None)
    if not args.smoke:
        if goodput_ratio < 0.9:
            raise SystemExit(
                f"overload FAILED: adaptive goodput degraded to "
                f"{goodput_ratio:.2f}x of the hard-429 baseline (< 0.9x)")
        if p99_ratio is not None and p99_ratio > 1.1:
            raise SystemExit(
                f"overload FAILED: adaptive served p99 degraded to "
                f"{p99_ratio:.2f}x of the hard-429 baseline (> 1.1x)")
        if not (overload["adaptive"]["shed_deadline"]
                or overload["adaptive"]["shed_degraded"]):
            raise SystemExit(
                "overload FAILED: adaptive phase never exercised "
                "admission control (no serve.shed.* rejections)")
    print(f"overload: adaptive goodput {goodput_ratio:.2f}x baseline, "
          f"served p99 "
          f"{'n/a' if p99_ratio is None else f'{p99_ratio:.2f}x'} "
          f"baseline")

    payload = {
        "benchmark": "serve",
        "smoke": bool(args.smoke),
        "config": {
            "node": NODE,
            "arch": ARCH,
            "q": Q,
            "spares": SPARES,
            "clients": CLIENTS,
            "requests_per_client": requests_per_client,
            "unique_points": len(grid),
            "serial_args": SERIAL_ARGS,
            "coalesced_args": COALESCED_ARGS,
            "telemetry": "trace + flight recorder enabled on both phases",
        },
        "speedup": speedup,
        "parity_exact": True,
        "serial": phases["serial"],
        "coalesced": coalesced,
        "overload": {
            "clients": OVERLOAD_CLIENTS,
            "duration_s": overload_duration,
            "points_per_client": overload_per_client,
            "hard_args": OVERLOAD_HARD_ARGS,
            "adaptive_args": OVERLOAD_ADAPTIVE_ARGS,
            "hard": overload["hard"],
            "adaptive": overload["adaptive"],
            "adaptive_goodput_ratio": goodput_ratio,
            "adaptive_p99_ratio": p99_ratio,
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output} (coalesced {speedup:.2f}x serial, "
          f"parity exact)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
