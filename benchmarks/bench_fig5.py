"""Benchmark: regenerate Figure 5 (duplicated-system distributions).

Workload: nine 10,000-sample ensembles (baseline + 8 spare budgets) plus
the deterministic spare solve at 0.55 V, 90 nm.
"""

from conftest import run_once


def test_regenerate_fig5(benchmark, regenerate, save_report):
    result = run_once(benchmark, regenerate, "fig5", False)
    save_report(result)
    data = result.data
    # Shape contract: spares shift the 99% point monotonically toward the
    # baseline target and eventually meet it.
    p99 = data["p99_fo4"]
    assert all(a >= b for a, b in zip(p99, p99[1:]))
    assert p99[-1] <= data["target_fo4"]
    assert data["solver_spares"] is not None
    assert 1 <= data["solver_spares"] <= 32
