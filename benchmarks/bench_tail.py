"""Benchmark: importance-sampled deep-tail sign-off vs brute force.

The high-sigma tail estimator (:mod:`repro.core.tailsampling`) promises
deep-tail quantiles from a few thousand *weighted* Monte-Carlo samples
where plain Monte Carlo needs millions.  This benchmark quantifies that
promise on one reduced architecture and writes ``BENCH_tail.json`` at
the repository root:

* **reference** — a brute-force plain-MC tail quantile from a large
  chip ensemble (the ground truth the weighted estimate must hit).
* **importance sampling** — cross-entropy shift search plus a weighted
  tail-quantile estimate at ~10^3 samples; gated on ``< 5 %`` relative
  error against the brute-force reference and a minimum effective
  sample size.
* **determinism** — the sharded weighted sampler at ``jobs=2`` must be
  byte-for-byte identical (float hex) to ``jobs=1``.
* **speedup** — brute-force wall clock over total IS wall clock
  (search + estimate); the full run gates on ``>= 50x``.

The process exits non-zero when any gate fails (CI runs ``--smoke``,
which drops the brute-force ensemble to ~2x10^5 chips at q=0.999 and
skips the speedup gate — at that shallow depth brute force is still
cheap, so the ratio is not meaningful).

Run directly::

    python benchmarks/bench_tail.py            # full (q=0.9999, 2M ref chips)
    python benchmarks/bench_tail.py --smoke    # CI-sized (q=0.999, 200k)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# The cache must be off before repro is imported anywhere down the line.
os.environ.setdefault("REPRO_CACHE_DISABLE", "1")

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.montecarlo import MonteCarloEngine           # noqa: E402
from repro.core.tailsampling import TailSampler              # noqa: E402
from repro.devices.technology import get_technology          # noqa: E402
from repro.runtime.parallel import ParallelSampler           # noqa: E402

NODE = "22nm"
VDD = 0.55

#: Minimal architecture so the brute-force reference ensemble stays
#: tractable on one core (400 gate evaluations per chip; the estimator
#: itself is architecture-agnostic — see the tail experiment for the
#: reduced-sign-off scale and the unit tests for invariance checks).
WIDTH, PATHS_PER_LANE, CHAIN_LENGTH = 8, 5, 10
BATCH = 4096
SEED = 0

#: Gates.
MAX_REL_ERR = 0.05
MIN_ESS = 50.0
MIN_SPEEDUP = 50.0


def brute_force_quantile(tech, q: float, n_chips: int) -> tuple:
    """Plain-MC reference: ``(t_q seconds, wall seconds)``."""
    engine = MonteCarloEngine(tech, seed=SEED)
    t0 = time.perf_counter()
    delays = engine.system_delays(
        VDD, width=WIDTH, paths_per_lane=PATHS_PER_LANE,
        chain_length=CHAIN_LENGTH, n_chips=n_chips, batch_size=BATCH)
    wall = time.perf_counter() - t0
    return float(np.quantile(delays, q)), wall


def importance_sampled_quantile(tech, q: float, n_samples: int,
                                n_pilot: int, max_rounds: int) -> tuple:
    """IS estimate: ``(TailEstimate, search seconds, estimate seconds)``."""
    sampler = TailSampler(tech, width=WIDTH,
                          paths_per_lane=PATHS_PER_LANE,
                          chain_length=CHAIN_LENGTH, batch_size=BATCH)
    t0 = time.perf_counter()
    proposal, rounds = sampler.find_shift(
        VDD, q=q, n_pilot=n_pilot, max_rounds=max_rounds,
        root_seed=SEED)
    t1 = time.perf_counter()
    est = sampler.tail_quantile(VDD, q, n_samples=n_samples,
                                proposal=proposal, root_seed=SEED)
    t2 = time.perf_counter()
    return est, rounds, t1 - t0, t2 - t1


def jobs_parity(tech, q: float, n_samples: int, proposal) -> bool:
    """Sharded weighted sampling must be jobs-invariant, byte for byte."""
    kwargs = dict(width=WIDTH, paths_per_lane=PATHS_PER_LANE,
                  chain_length=CHAIN_LENGTH, n_chips=n_samples,
                  proposal=proposal, batch_size=BATCH, root_seed=SEED)
    d1, w1 = ParallelSampler(jobs=1, shard_size=max(16, n_samples // 8)) \
        .weighted_system_delays(tech, VDD, **kwargs)
    d2, w2 = ParallelSampler(jobs=2, shard_size=max(16, n_samples // 8)) \
        .weighted_system_delays(tech, VDD, **kwargs)
    hex1 = [v.hex() for v in d1] + [v.hex() for v in w1]
    hex2 = [v.hex() for v in d2] + [v.hex() for v in w2]
    return hex1 == hex2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: q=0.999, 200k reference chips, "
                             "no speedup gate")
    parser.add_argument("--ref-chips", type=int, default=None,
                        help="brute-force ensemble size "
                             "(default 2,000,000; smoke 200,000)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_tail.json")
    args = parser.parse_args(argv)

    if args.smoke:
        q, n_ref = 0.999, args.ref_chips or 200_000
        n_samples, n_pilot, max_rounds = 1024, 256, 3
    else:
        q, n_ref = 0.9999, args.ref_chips or 2_000_000
        n_samples, n_pilot, max_rounds = 2048, 512, 5

    tech = get_technology(NODE)

    print(f"brute force: {n_ref:,} chips at "
          f"{WIDTH}x{PATHS_PER_LANE}x{CHAIN_LENGTH}, q={q:g} ...")
    t_ref, wall_ref = brute_force_quantile(tech, q, n_ref)
    print(f"  reference t_q = {1e9 * t_ref:.4f} ns  ({wall_ref:.1f} s)")

    print(f"importance sampling: {n_samples} weighted samples, "
          f"pilot {n_pilot}x{max_rounds} ...")
    est, rounds, wall_search, wall_est = importance_sampled_quantile(
        tech, q, n_samples, n_pilot, max_rounds)
    wall_is = wall_search + wall_est
    rel_err = abs(est.value / t_ref - 1.0)
    speedup = wall_ref / wall_is
    print(f"  IS t_q = {1e9 * est.value:.4f} ns  rel err "
          f"{100 * rel_err:.3f}%  ESS {est.ess:.0f}/{n_samples}  "
          f"max w {est.weight_max_ratio:.4f}  shift "
          f"{est.proposal.d2d_shifts[0]:.3f} sigma ({rounds} rounds)")
    print(f"  wall: search {wall_search:.2f} s + estimate "
          f"{wall_est:.2f} s = {wall_is:.2f} s  "
          f"-> {speedup:.0f}x vs brute force")

    print("determinism: jobs=2 vs jobs=1 weighted shards ...")
    bit_identical = jobs_parity(tech, q, min(n_samples, 512), est.proposal)
    print(f"  {'bit-identical' if bit_identical else 'MISMATCH'}")

    gates = {
        "rel_err_ok": bool(rel_err < MAX_REL_ERR),
        "ess_ok": bool(est.ess >= MIN_ESS),
        "jobs_bit_identical": bool(bit_identical),
    }
    if not args.smoke:
        gates["speedup_ok"] = bool(speedup >= MIN_SPEEDUP)

    payload = {
        "benchmark": "tail_importance_sampling",
        "smoke": bool(args.smoke),
        "config": {
            "node": NODE,
            "vdd": VDD,
            "width": WIDTH,
            "paths_per_lane": PATHS_PER_LANE,
            "chain_length": CHAIN_LENGTH,
            "q": q,
            "reference_chips": int(n_ref),
            "is_samples": int(n_samples),
            "n_pilot": int(n_pilot),
            "max_rounds": int(max_rounds),
            "seed": SEED,
            "cache_disabled": True,
        },
        "reference_t_q_s": t_ref,
        "is_t_q_s": est.value,
        "rel_err": rel_err,
        "ess": est.ess,
        "weight_max_ratio": est.weight_max_ratio,
        "shift_sigma": est.proposal.d2d_shifts[0],
        "shift_search_rounds": int(rounds),
        "wall_reference_s": wall_ref,
        "wall_search_s": wall_search,
        "wall_estimate_s": wall_est,
        "speedup": speedup,
        "sample_ratio": n_ref / n_samples,
        "gates": gates,
        "passed": all(gates.values()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"\nwrote {args.output} "
          f"(rel err {100 * rel_err:.3f}%, {speedup:.0f}x speedup, "
          f"{'PASS' if payload['passed'] else 'FAIL'})")
    if not payload["passed"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"ERROR: tail benchmark gates failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
